"""Dynamic reliability managers: RL-based and baselines (Sec. IV).

The RL-DVFS manager follows the scheme of [1]/[33]/[43]: states combine
temperature, utilization, and soft-error pressure; actions pick a global
V-f level; the reward trades functional reliability (soft-error and
deadline terms) against lifetime (temperature) and energy.  The thermal
manager of [39]/[40]/[49] instead migrates the hottest core's load.

Baselines: run at maximum V-f always (StaticManager — best functional
reliability, worst thermals/energy), a random-knob manager, and a greedy
temperature-threshold governor.
"""

from __future__ import annotations

import copy

import numpy as np

from repro import obs
from repro.system.platform import Platform
from repro.system.rl import Discretizer, QLearningAgent
from repro.system.ser import soft_error_rate


class StaticManager:
    """Pin every core at one V-f level (default: maximum)."""

    def __init__(self, level_index=None):
        self.level_index = level_index

    def control(self, platform):
        for core in platform.cores:
            idx = self.level_index
            if idx is None:
                idx = len(core.vf_levels) - 1
            core.set_level(idx)


class RandomManager:
    """Pick a random V-f level each control epoch (a sanity baseline)."""

    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def control(self, platform):
        for core in platform.cores:
            core.set_level(int(self.rng.integers(len(core.vf_levels))))


class GreedyThermalManager:
    """Threshold governor: throttle when hot, boost when cool."""

    def __init__(self, hot_c=75.0, cool_c=55.0):
        self.hot_c = hot_c
        self.cool_c = cool_c

    def control(self, platform):
        for core in platform.cores:
            if core.temperature_c > self.hot_c and core.level_index > 0:
                core.set_level(core.level_index - 1)
            elif core.temperature_c < self.cool_c and core.level_index < len(core.vf_levels) - 1:
                core.set_level(core.level_index + 1)


class RLDVFSManager:
    """Q-learning DVFS manager optimizing a reliability-weighted reward.

    Reward per control epoch (following the [1]/[43] structure):

        R = - w_miss * new_misses - w_soft * new_soft_failures
            - w_temp * max(T_peak - T_limit, 0) - w_energy * energy

    so the agent learns to run as slow as thermal/energy pressure allows
    *without* letting the lower voltage's SER and stretched execution
    times cause functional failures.
    """

    def __init__(
        self,
        n_levels=5,
        t_limit_c=75.0,
        w_miss=40.0,
        w_soft=40.0,
        w_temp=1.0,
        w_energy=0.4,
        seed=0,
    ):
        self.t_limit_c = t_limit_c
        self.w_miss = w_miss
        self.w_soft = w_soft
        self.w_temp = w_temp
        self.w_energy = w_energy
        self.agent = QLearningAgent(n_actions=n_levels, seed=seed)
        self.discretize = Discretizer(
            [
                np.array([50.0, 62.0, 72.0, 80.0]),  # peak core temperature
                np.array([0.25, 0.5, 0.75]),  # mean utilization
                np.array([1e-6, 1e-5, 1e-4]),  # current SER at the chosen V
            ]
        )
        self._pending = None  # (state, action, metrics snapshot)
        self.training = True

    def _observe(self, platform):
        temps = platform.thermal.temperatures
        utils = [c.utilization for c in platform.cores]
        volts = [c.vf.voltage for c in platform.cores]
        return self.discretize(
            [
                float(np.max(temps)),
                float(np.mean(utils)),
                float(np.mean(soft_error_rate(np.asarray(volts)))),
            ]
        )

    def _reward(self, platform, before):
        m = platform.metrics
        d_miss = m.deadline_misses - before["misses"]
        d_soft = m.soft_failures - before["soft"]
        d_energy = m.energy_j - before["energy"]
        overheat = max(float(np.max(platform.thermal.temperatures)) - self.t_limit_c, 0.0)
        return (
            -self.w_miss * d_miss
            - self.w_soft * d_soft
            - self.w_temp * overheat
            - self.w_energy * d_energy
        )

    def control(self, platform):
        state = self._observe(platform)
        if self._pending is not None and self.training:
            prev_state, prev_action, before = self._pending
            reward = self._reward(platform, before)
            self.agent.update(prev_state, prev_action, reward, state)
        action = self.agent.act(state, explore=self.training)
        for core in platform.cores:
            core.set_level(min(action, len(core.vf_levels) - 1))
        self._pending = (
            state,
            action,
            {
                "misses": platform.metrics.deadline_misses,
                "soft": platform.metrics.soft_failures,
                "energy": platform.metrics.energy_j,
            },
        )

    def freeze(self):
        """Stop learning and exploring (deployment mode)."""
        self.training = False


class PerCoreRLDVFSManager:
    """Per-core Q-learning DVFS (Sec. IV: DVFS "applied to cores individually").

    One agent per core, each observing *local* state (its own temperature
    and utilization) and setting its own V-f level; the reward charges a
    core for global deadline/soft-failure increments (credit assignment is
    shared) plus its local overheating and energy share.  Compared to the
    global :class:`RLDVFSManager`, per-core control can slow lightly
    loaded cores without throttling busy ones.
    """

    def __init__(self, n_levels=5, t_limit_c=75.0, w_miss=40.0, w_soft=40.0,
                 w_temp=1.0, w_energy=0.4, seed=0):
        self.n_levels = n_levels
        self.t_limit_c = t_limit_c
        self.w_miss = w_miss
        self.w_soft = w_soft
        self.w_temp = w_temp
        self.w_energy = w_energy
        self.seed = seed
        self.agents = {}
        self.discretize = Discretizer(
            [
                np.array([50.0, 62.0, 72.0, 80.0]),  # own temperature
                np.array([0.25, 0.5, 0.75]),  # own utilization
            ]
        )
        self._pending = None
        self.training = True

    def _agent_for(self, core):
        if core.core_id not in self.agents:
            self.agents[core.core_id] = QLearningAgent(
                n_actions=self.n_levels, seed=self.seed + 17 * (core.core_id + 1)
            )
        return self.agents[core.core_id]

    def _observe(self, platform):
        states = {}
        for idx, core in enumerate(platform.cores):
            states[core.core_id] = self.discretize(
                [float(platform.thermal.temperatures[idx]), core.utilization]
            )
        return states

    def control(self, platform):
        states = self._observe(platform)
        n_cores = len(platform.cores)
        if self._pending is not None and self.training:
            prev_states, prev_actions, before = self._pending
            m = platform.metrics
            d_miss = m.deadline_misses - before["misses"]
            d_soft = m.soft_failures - before["soft"]
            d_energy = m.energy_j - before["energy"]
            # Local credit assignment: each core pays for its *own* power
            # draw (global deltas only split the shared failure terms).
            from repro.system.power import total_power

            powers = [total_power(core) for core in platform.cores]
            total_p = sum(powers) or 1.0
            for idx, core in enumerate(platform.cores):
                overheat = max(
                    float(platform.thermal.temperatures[idx]) - self.t_limit_c, 0.0
                )
                local_energy = d_energy * powers[idx] / total_p
                reward = (
                    -self.w_miss * d_miss / n_cores
                    - self.w_soft * d_soft / n_cores
                    - self.w_temp * overheat
                    - self.w_energy * n_cores * local_energy
                )
                self._agent_for(core).update(
                    prev_states[core.core_id],
                    prev_actions[core.core_id],
                    reward,
                    states[core.core_id],
                )
        actions = {}
        for core in platform.cores:
            action = self._agent_for(core).act(
                states[core.core_id], explore=self.training
            )
            core.set_level(min(action, len(core.vf_levels) - 1))
            actions[core.core_id] = action
        self._pending = (
            states,
            actions,
            {
                "misses": platform.metrics.deadline_misses,
                "soft": platform.metrics.soft_failures,
                "energy": platform.metrics.energy_j,
            },
        )

    def freeze(self):
        self.training = False


class MigrationThermalManager:
    """Thermal management by task re-allocation ([39],[40],[49] mechanism).

    Each control epoch the most-loaded task on the hottest core migrates
    to the coolest core (if it fits), flattening spatial gradients and
    thermal cycling — the thread-allocation knob of the surveyed thermal
    managers, in its greedy deterministic form.
    """

    def __init__(self, gradient_threshold_k=3.0):
        self.gradient_threshold_k = gradient_threshold_k

    def control(self, platform):
        temps = platform.thermal.temperatures
        hot = int(np.argmax(temps))
        cool = int(np.argmin(temps))
        if temps[hot] - temps[cool] < self.gradient_threshold_k or hot == cool:
            return
        from repro.system.scheduler import edf_feasible

        candidates = [
            t for t in platform.task_set if platform.assignment[t.name] == hot
        ]
        if not candidates:
            return
        mover = max(candidates, key=lambda t: t.utilization)
        cool_tasks = [
            t for t in platform.task_set if platform.assignment[t.name] == cool
        ]
        if edf_feasible(cool_tasks + [mover], speed=platform.cores[cool].speed_factor):
            assignment = dict(platform.assignment)
            assignment[mover.name] = cool
            platform.remap(assignment)
            obs.inc("system.managers.migrations")


class RLThermalManager(RLDVFSManager):
    """RL thermal manager: DVFS knob + greedy migration, thermal-heavy reward.

    Follows the intra/inter-application thermal optimization of [39]/[44]:
    the Q-learning reward is dominated by peak-temperature and
    thermal-cycle terms (lifetime), with deadline misses as a constraint
    penalty, and the task-migration knob runs alongside the learned DVFS.
    """

    def __init__(self, t_limit_c=60.0, seed=0):
        super().__init__(
            t_limit_c=t_limit_c,
            w_miss=40.0,
            w_soft=5.0,
            w_temp=8.0,
            w_energy=0.2,
            seed=seed,
        )
        self._migrator = MigrationThermalManager()

    def control(self, platform):
        super().control(platform)
        self._migrator.control(platform)


def run_managed_simulation(
    manager,
    task_set,
    n_cores=4,
    duration=30.0,
    dt=0.05,
    seed=0,
    training_episodes=0,
    cores_factory=None,
):
    """Simulate a mission window under a manager; optionally pre-train RL.

    ``training_episodes`` runs throwaway episodes first (same workload,
    different random seeds) so the Q-table converges before the scored
    run — the design-time learning phase of the Fig. 1 loop.
    """
    from repro.system.core import Core
    from repro.system.scheduler import first_fit_partition

    def build(seed_offset):
        if cores_factory is not None:
            cores = cores_factory()
        else:
            cores = [Core(i) for i in range(n_cores)]
        assignment = first_fit_partition(task_set, cores)
        return Platform(
            cores, task_set, assignment, dt=dt, seed=seed + seed_offset
        )

    with obs.span(
        "system.managers.simulation",
        manager=type(manager).__name__, training_episodes=training_episodes,
    ):
        for episode in range(training_episodes):
            platform = build(1000 + episode)
            platform.run(duration, manager=manager)
        if hasattr(manager, "freeze"):
            manager.freeze()
        platform = build(0)
        return platform.run(duration, manager=manager)
