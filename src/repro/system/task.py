"""Periodic real-time task model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Task:
    """A periodic task.

    Attributes
    ----------
    name:
        Unique task name.
    wcet:
        Worst-case execution time (seconds) at the *nominal* (maximum)
        frequency; at frequency ``f`` the execution time is
        ``wcet * f_nom / f``.
    period:
        Release period (seconds); implicit deadline = period unless given.
    deadline:
        Relative deadline (seconds).
    criticality:
        0 = low, 1 = high (mixed-criticality hooks).
    vulnerability:
        Architectural vulnerability factor in [0, 1]: the fraction of raw
        soft errors that corrupt this task's output.
    """

    name: str
    wcet: float
    period: float
    deadline: float = None
    criticality: int = 0
    vulnerability: float = 0.5

    def __post_init__(self):
        if self.wcet <= 0 or self.period <= 0:
            raise ValueError("wcet and period must be positive")
        if self.deadline is None:
            self.deadline = self.period
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.wcet > self.period:
            raise ValueError(f"task {self.name}: wcet exceeds period")
        if not 0.0 <= self.vulnerability <= 1.0:
            raise ValueError("vulnerability must be in [0, 1]")

    @property
    def utilization(self):
        """CPU share at nominal frequency."""
        return self.wcet / self.period


@dataclass
class TaskSet:
    """An ordered collection of tasks."""

    tasks: list = field(default_factory=list)

    def __post_init__(self):
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self):
        return len(self.tasks)

    def __getitem__(self, i):
        return self.tasks[i]

    @property
    def utilization(self):
        return sum(t.utilization for t in self.tasks)

    def hyperperiod_steps(self, dt):
        """Number of ``dt`` steps covering the longest period a few times."""
        longest = max(t.period for t in self.tasks)
        return int(np.ceil(4 * longest / dt))


def generate_task_set(
    n_tasks=8,
    total_utilization=0.6,
    period_range=(0.02, 0.2),
    seed=0,
    high_criticality_fraction=0.3,
):
    """Random task set with UUniFast-style utilization splitting."""
    if n_tasks < 1:
        raise ValueError("need at least one task")
    if not 0 < total_utilization <= n_tasks:
        raise ValueError("infeasible total utilization")
    rng = np.random.default_rng(seed)
    # UUniFast: unbiased utilization partition.
    utils = []
    remaining = total_utilization
    for i in range(n_tasks - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n_tasks - i - 1))
        utils.append(remaining - next_remaining)
        remaining = next_remaining
    utils.append(remaining)
    tasks = []
    for i, u in enumerate(utils):
        period = float(rng.uniform(*period_range))
        wcet = min(max(u, 1e-4) * period, 0.95 * period)
        tasks.append(
            Task(
                name=f"task{i}",
                wcet=wcet,
                period=period,
                criticality=int(rng.random() < high_criticality_fraction),
                vulnerability=float(rng.uniform(0.2, 0.9)),
            )
        )
    return TaskSet(tasks)
