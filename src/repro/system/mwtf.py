"""Mean workload to failure (ref [2], Sec. IV-A3).

MWTF measures how much useful work completes per failure:

    MWTF = work_rate / failure_rate
         = 1 / (AVF * raw_SER * t_exec_per_work_unit)

Mapping a task to a core changes all three terms: a faster core shortens
the exposure window, a less vulnerable core lowers the effective AVF.
Maximizing MWTF balances performance against vulnerability.
"""

from __future__ import annotations

import numpy as np

from repro.system.ser import soft_error_rate


def mwtf(task, core, execution_time=None):
    """Expected successfully-executed jobs of ``task`` on ``core`` between
    failures (dimensionless work units)."""
    t_exec = execution_time if execution_time is not None else core.scaled_wcet(task)
    if t_exec <= 0 or not np.isfinite(t_exec):
        raise ValueError("execution time must be positive and finite")
    rate = (
        soft_error_rate(core.vf.voltage)
        * core.vulnerability_factor
        * task.vulnerability
    )
    failures_per_job = rate * t_exec
    if failures_per_job <= 0:
        return float("inf")
    return 1.0 / failures_per_job


def mapping_mwtf(task_set, cores, assignment):
    """Aggregate MWTF of a task-to-core assignment (harmonic combination).

    ``assignment`` maps task name -> core index.  The system fails when
    any task's output is corrupted, so failure rates add: the aggregate
    MWTF is the harmonic-style combination of per-task MWTFs weighted by
    their job rates.
    """
    total_rate = 0.0
    total_work = 0.0
    for task in task_set:
        core = cores[assignment[task.name]]
        m = mwtf(task, core)
        jobs_per_s = 1.0 / task.period
        total_work += jobs_per_s
        total_rate += jobs_per_s / m
    if total_rate <= 0:
        return float("inf")
    return total_work / total_rate
