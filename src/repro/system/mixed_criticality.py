"""Learning-oriented mixed-criticality scheduling (Sec. VI-B, ref [38]).

Mixed-criticality systems classify tasks into criticality levels; HI
tasks carry both an optimistic (LO-mode) and a conservative (HI-mode)
execution budget.  The classic policy drops *all* LO tasks whenever any
HI task overruns its optimistic budget — safe but brutal on quality of
service.  Ref [38] ("Learning-Oriented QoS- and Drop-Aware Task
Scheduling") learns the workload trend and drops selectively.

Model: each scheduling epoch has capacity ``C``.  HI demand is stochastic
(usually near the optimistic estimate, occasionally spiking toward the
conservative bound, with observable precursors).  A controller admits a
subset of LO tasks; if admitted LO demand plus actual HI demand exceeds
C, HI jobs miss unless the epoch degenerates to a drop-everything mode
switch (zero LO QoS for the epoch).

Controllers:

* :class:`PessimisticController` — budget HI at the conservative bound
  (all-safe, lowest QoS);
* :class:`OptimisticController` — budget HI at the optimistic estimate
  (best QoS until a spike causes a mode switch);
* :class:`LearnedController` — regress the next epoch's HI demand from
  the observable precursors and admit LO tasks against the prediction
  plus a safety quantile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.ensemble import GradientBoostingRegressor
from repro.ml.preprocessing import StandardScaler


@dataclass(frozen=True)
class MCTask:
    """One LO-criticality task competing for leftover capacity."""

    name: str
    demand: float  # capacity units per epoch
    value: float  # QoS value when it runs


class MCWorkload:
    """Stochastic HI demand with observable precursors.

    HI demand sits near ``hi_optimistic`` in calm regimes; a latent
    pressure process occasionally pushes it toward ``hi_conservative``.
    The observation vector (queue depth, input rate, recent demand) leaks
    the pressure — the signal the learned controller exploits.
    """

    def __init__(
        self,
        hi_optimistic=0.45,
        hi_conservative=0.85,
        spike_rate=0.08,
        seed=0,
    ):
        if not 0 < hi_optimistic < hi_conservative <= 1.0:
            raise ValueError("need 0 < optimistic < conservative <= 1")
        self.hi_optimistic = hi_optimistic
        self.hi_conservative = hi_conservative
        self.spike_rate = spike_rate
        self.rng = np.random.default_rng(seed)
        self._pressure = 0.0
        self._last_demand = hi_optimistic

    def step(self):
        """Advance one epoch; returns the actual HI demand."""
        if self.rng.random() < self.spike_rate:
            self._pressure = min(self._pressure + self.rng.uniform(0.3, 1.0), 1.5)
        self._pressure *= 0.75  # pressure decays over epochs
        span = self.hi_conservative - self.hi_optimistic
        demand = (
            self.hi_optimistic
            + span * np.tanh(self._pressure)
            + self.rng.normal(0, 0.015)
        )
        self._last_demand = float(np.clip(demand, 0.0, 1.0))
        return self._last_demand

    def observe(self):
        """Precursor features available *before* the epoch executes."""
        return np.array(
            [
                self._pressure + self.rng.normal(0, 0.05),
                self._last_demand + self.rng.normal(0, 0.02),
                self.rng.normal(0.5, 0.05),  # an uninformative sensor
            ]
        )


@dataclass
class MCMetrics:
    epochs: int = 0
    hi_misses: int = 0
    mode_switches: int = 0
    qos_total: float = 0.0
    qos_max: float = 0.0

    @property
    def hi_miss_rate(self):
        return self.hi_misses / max(self.epochs, 1)

    @property
    def qos(self):
        """Achieved LO value as a fraction of the maximum possible."""
        return self.qos_total / max(self.qos_max, 1e-12)


class PessimisticController:
    """Budget HI at its conservative bound every epoch."""

    name = "pessimistic"

    def __init__(self, workload_model):
        self.hi_budget = workload_model.hi_conservative

    def admit(self, observation, lo_tasks, capacity):
        return _admit_by_value(lo_tasks, capacity - self.hi_budget)


class OptimisticController:
    """Budget HI at its optimistic estimate every epoch."""

    name = "optimistic"

    def __init__(self, workload_model):
        self.hi_budget = workload_model.hi_optimistic

    def admit(self, observation, lo_tasks, capacity):
        return _admit_by_value(lo_tasks, capacity - self.hi_budget)


class LearnedController:
    """Predict next-epoch HI demand from precursors; admit LO against it.

    The safety margin is the trained residual quantile, so HI guarantees
    hold with the targeted confidence while LO tasks fill genuinely free
    capacity.
    """

    name = "learned"

    def __init__(self, quantile=0.95, seed=0):
        self.quantile = quantile
        self.seed = seed
        self._model = GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.15, max_depth=3, seed=seed
        )
        self._scaler = None
        self._margin = None

    def train(self, workload_factory, n_epochs=1500):
        env = workload_factory()
        X = []
        y = []
        for _ in range(n_epochs):
            obs = env.observe()
            demand = env.step()
            X.append(obs)
            y.append(demand)
        X = np.asarray(X)
        y = np.asarray(y)
        self._scaler = StandardScaler().fit(X)
        self._model.fit(self._scaler.transform(X), y)
        residuals = y - self._model.predict(self._scaler.transform(X))
        self._margin = float(np.quantile(residuals, self.quantile))
        return self

    def predict_hi_demand(self, observation):
        if self._scaler is None:
            raise RuntimeError("controller is not trained")
        x = self._scaler.transform(np.asarray([observation]))
        return float(self._model.predict(x)[0]) + self._margin

    def admit(self, observation, lo_tasks, capacity):
        hi_budget = min(self.predict_hi_demand(observation), 1.0)
        return _admit_by_value(lo_tasks, capacity - hi_budget)


def _admit_by_value(lo_tasks, free_capacity):
    """Greedy value-density admission of LO tasks into free capacity."""
    admitted = []
    remaining = max(free_capacity, 0.0)
    for task in sorted(lo_tasks, key=lambda t: -t.value / t.demand):
        if task.demand <= remaining:
            admitted.append(task)
            remaining -= task.demand
    return admitted


def generate_lo_tasks(n_tasks=6, seed=0):
    rng = np.random.default_rng(seed)
    return [
        MCTask(
            name=f"lo{i}",
            demand=float(rng.uniform(0.05, 0.2)),
            value=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(n_tasks)
    ]


def run_mc_simulation(
    controller,
    workload,
    lo_tasks,
    n_epochs=500,
    capacity=1.0,
    switch_recovery_epochs=3,
):
    """Simulate a mission; returns :class:`MCMetrics`.

    Per epoch: the controller admits LO tasks from the precursor
    observation, then the actual HI demand realizes.  Overload first
    triggers a mode switch (all admitted LO work dropped, zero QoS for
    the epoch, and the system stays in HI mode — no LO admission — for
    ``switch_recovery_epochs`` while state is re-established); if even
    the HI demand alone exceeds capacity, HI jobs miss — the failure
    mixed-criticality systems must exclude.
    """
    metrics = MCMetrics()
    max_value = sum(t.value for t in lo_tasks)
    recovery = 0
    for _ in range(n_epochs):
        obs = workload.observe()
        if recovery > 0:
            admitted = []
            recovery -= 1
        else:
            admitted = controller.admit(obs, lo_tasks, capacity)
        hi_demand = workload.step()
        lo_demand = sum(t.demand for t in admitted)
        metrics.epochs += 1
        metrics.qos_max += max_value
        if hi_demand > capacity:
            metrics.hi_misses += 1
            metrics.mode_switches += 1
            recovery = switch_recovery_epochs
        elif hi_demand + lo_demand > capacity:
            # Mode switch: LO work of this epoch is dropped, HI survives.
            metrics.mode_switches += 1
            recovery = switch_recovery_epochs
        else:
            metrics.qos_total += sum(t.value for t in admitted)
    return metrics
