"""System-level MTTF combination and availability (ref [1])."""

from __future__ import annotations

import numpy as np


def system_mttf(core_mttfs):
    """MTTF of a system whose cores fail independently (series system)."""
    core_mttfs = np.asarray(list(core_mttfs), dtype=float)
    if len(core_mttfs) == 0:
        raise ValueError("need at least one core MTTF")
    if np.any(core_mttfs <= 0):
        raise ValueError("MTTFs must be positive")
    return float(1.0 / np.sum(1.0 / core_mttfs))


def availability(mttf, mttr):
    """Steady-state availability ``MTTF / (MTTF + MTTR)`` as in [1]."""
    if mttf <= 0 or mttr < 0:
        raise ValueError("mttf must be positive and mttr non-negative")
    return mttf / (mttf + mttr)


def lifetime_weighted_availability(mttf_years, soft_failure_rate_per_s, repair_s=1.0):
    """Availability combining hard (lifetime) and soft (transient) failures.

    Hard failures take the system down permanently relative to mission
    horizons; soft failures cost a recovery interval each.  Following
    [1]'s availability formulation, both are folded into a single
    MTTF/(MTTF+MTTR) with rates summed.
    """
    year_s = 3.154e7
    hard_rate = 1.0 / (mttf_years * year_s)
    total_rate = hard_rate + soft_failure_rate_per_s
    if total_rate <= 0:
        return 1.0
    mttf_s = 1.0 / total_rate
    return availability(mttf_s, repair_s)
