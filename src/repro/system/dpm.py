"""Dynamic power management: sleep-state consolidation (Sec. IV knob 3).

DPM "can change the power states of the system's cores into active,
idle, sleep, or off modes ... it can also help manage the thermal and
reliability issues, especially by tuning the state of cores" (Sec. IV).

:class:`ConsolidationDPMManager` packs the task set onto the fewest cores
whose EDF bound still holds, sleeps the rest, and wakes cores back up
when utilization grows — trading idle leakage for (slightly) higher
per-core utilization and temperature.
"""

from __future__ import annotations

from repro.system.scheduler import edf_feasible


class ConsolidationDPMManager:
    """Sleep idle cores by consolidating tasks onto as few as possible.

    Parameters
    ----------
    utilization_headroom:
        Fraction of a core's capacity deliberately left free (guards
        against DVFS slowdowns and migration cost).
    """

    def __init__(self, utilization_headroom=0.1):
        if not 0.0 <= utilization_headroom < 1.0:
            raise ValueError("headroom must be in [0, 1)")
        self.headroom = utilization_headroom

    def _pack(self, platform):
        """First-fit-decreasing packing under the headroom-tightened bound."""
        tasks = sorted(platform.task_set, key=lambda t: -t.utilization)
        bins = [[] for _ in platform.cores]
        assignment = {}
        for task in tasks:
            placed = False
            for idx, core in enumerate(platform.cores):
                candidate = bins[idx] + [task]
                speed = core.speed_factor * (1.0 - self.headroom)
                if speed > 0 and edf_feasible(candidate, speed=speed):
                    bins[idx].append(task)
                    assignment[task.name] = idx
                    placed = True
                    break
            if not placed:
                return None, None  # infeasible with headroom; keep all awake
        return assignment, bins

    def control(self, platform):
        assignment, bins = self._pack(platform)
        if assignment is None:
            for core in platform.cores:
                core.set_power_state("active")
            return
        platform.remap(assignment)
        for idx, core in enumerate(platform.cores):
            if bins[idx]:
                core.set_power_state("active")
            else:
                core.set_power_state("sleep")

    def active_core_count(self, platform):
        return sum(1 for c in platform.cores if c.power_state == "active")
