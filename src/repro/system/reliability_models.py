"""Device-level lifetime (MTTF) models: EM, TDDB, TC, NBTI, HCI (ref [46]).

Standard empirical forms, normalized so a core at nominal conditions
(1.0 V, 2.2 GHz, 60 C, moderate activity) has an MTTF of roughly 10
years per mechanism.  What the management layers consume are the
*relative* sensitivities to temperature, voltage, and thermal cycling,
which these forms capture:

* Electromigration (Black):        MTTF ~ J^-n * exp(Ea/kT)
* TDDB (field-driven):             MTTF ~ V^-(a-bT) * exp(X + Y/T + ZT)/kT-ish,
  simplified to exp-form with voltage acceleration
* Thermal cycling (Coffin-Manson): N_f ~ dT^-q  (cycles to failure)
* NBTI / HCI:                      threshold-shift-limited lifetime via the
  :mod:`repro.transistor.aging` physics inverted for a failure criterion
"""

from __future__ import annotations

import numpy as np

BOLTZMANN_EV = 8.617e-5
YEAR_S = 3.154e7

# Normalization targets: ~10 years at the nominal corner.
_NOMINAL_T_K = 273.15 + 60.0
_EM_EA = 0.7
_TDDB_EA = 0.75
_EM_N = 1.8
_TDDB_GAMMA = 6.0  # voltage acceleration decades
_TC_Q = 2.35
_NBTI_FAIL_SHIFT = 0.05  # V of delta-Vth considered end-of-life


def _kelvin(t_c):
    return np.asarray(t_c, dtype=float) + 273.15


def em_mttf(temperature_c, current_density=1.0):
    """Electromigration MTTF (years), Black's equation.

    ``current_density`` is relative to nominal (scales with V*f roughly).
    """
    if np.any(np.asarray(current_density) <= 0):
        raise ValueError("current density must be positive")
    t_k = _kelvin(temperature_c)
    accel = np.exp(_EM_EA / BOLTZMANN_EV * (1.0 / t_k - 1.0 / _NOMINAL_T_K))
    return 10.0 * accel / np.asarray(current_density, dtype=float) ** _EM_N


def tddb_mttf(temperature_c, voltage=1.0):
    """Time-dependent dielectric breakdown MTTF (years)."""
    if np.any(np.asarray(voltage) <= 0):
        raise ValueError("voltage must be positive")
    t_k = _kelvin(temperature_c)
    thermal = np.exp(_TDDB_EA / BOLTZMANN_EV * (1.0 / t_k - 1.0 / _NOMINAL_T_K))
    voltage_accel = 10.0 ** (-_TDDB_GAMMA * (np.asarray(voltage, dtype=float) - 1.0))
    return 10.0 * thermal * voltage_accel


def tc_mttf(cycle_amplitude_k, cycles_per_day=50.0):
    """Thermal-cycling MTTF (years) via Coffin-Manson.

    Normalized to 10 years at 10 K swings, 50 cycles/day.
    """
    amp = np.asarray(cycle_amplitude_k, dtype=float)
    if np.any(amp < 0) or cycles_per_day <= 0:
        raise ValueError("invalid cycling parameters")
    amp = np.maximum(amp, 1e-3)
    cycles_to_failure = (10.0 / amp) ** _TC_Q * (10.0 * 365.0 * 50.0)
    return cycles_to_failure / (cycles_per_day * 365.0)


def nbti_mttf(temperature_c, voltage=1.0, duty_cycle=0.5):
    """NBTI-limited lifetime (years): time until delta-Vth hits the failure
    criterion, inverted from :func:`repro.transistor.aging.nbti_delta_vth`."""
    from repro.transistor.aging import nbti_delta_vth

    # Solve nbti_delta_vth(t) = FAIL for t via the power-law exponent.
    probe_t = YEAR_S
    shift_at_year = nbti_delta_vth(probe_t, duty_cycle, temperature_c, vdd=voltage * 0.8)
    shift_at_year = np.maximum(shift_at_year, 1e-9)
    from repro.transistor.aging import NBTI_TIME_EXPONENT

    years = (_NBTI_FAIL_SHIFT / shift_at_year) ** (1.0 / NBTI_TIME_EXPONENT)
    return years


def hci_mttf(temperature_c, voltage=1.0, activity=0.2):
    """HCI-limited lifetime (years), inverted like :func:`nbti_mttf`."""
    from repro.transistor.aging import HCI_TIME_EXPONENT, hci_delta_vth

    shift_at_year = hci_delta_vth(YEAR_S, activity, temperature_c, vdd=voltage * 0.8)
    shift_at_year = np.maximum(shift_at_year, 1e-9)
    years = (_NBTI_FAIL_SHIFT / shift_at_year) ** (1.0 / HCI_TIME_EXPONENT)
    return years


def combined_mttf(
    temperature_c,
    voltage=1.0,
    current_density=1.0,
    cycle_amplitude_k=5.0,
    cycles_per_day=50.0,
    duty_cycle=0.5,
    activity=0.2,
):
    """System MTTF via sum-of-failure-rates over the five mechanisms."""
    mechanisms = [
        em_mttf(temperature_c, current_density),
        tddb_mttf(temperature_c, voltage),
        tc_mttf(cycle_amplitude_k, cycles_per_day),
        nbti_mttf(temperature_c, voltage, duty_cycle),
        hci_mttf(temperature_c, voltage, activity),
    ]
    rates = sum(1.0 / np.asarray(m, dtype=float) for m in mechanisms)
    return 1.0 / rates
