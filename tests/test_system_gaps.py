"""Coverage for the smaller system-layer helpers."""

import numpy as np
import pytest

from repro.system import Core, Task, TaskSet, generate_task_set
from repro.system.mttf import lifetime_weighted_availability
from repro.system.mwtf import mapping_mwtf, mwtf
from repro.system.power import IDLE_POWER_FACTOR, total_power
from repro.system.ser import expected_failures


class TestLifetimeWeightedAvailability:
    def test_perfect_when_no_failures(self):
        # Hard failures only, astronomically rare, instant repair.
        a = lifetime_weighted_availability(1e9, 0.0, repair_s=0.0)
        assert a == pytest.approx(1.0)

    def test_soft_failures_reduce_availability(self):
        clean = lifetime_weighted_availability(10.0, 0.0)
        noisy = lifetime_weighted_availability(10.0, 1e-3)
        assert noisy < clean

    def test_shorter_lifetime_reduces_availability(self):
        long = lifetime_weighted_availability(10.0, 1e-6)
        short = lifetime_weighted_availability(0.1, 1e-6)
        assert short < long

    def test_bounded(self):
        a = lifetime_weighted_availability(5.0, 1e-4, repair_s=2.0)
        assert 0.0 < a < 1.0


class TestMappingMWTF:
    def test_aggregate_between_extremes(self):
        tasks = TaskSet(
            [
                Task("a", wcet=0.01, period=0.1, vulnerability=0.3),
                Task("b", wcet=0.02, period=0.2, vulnerability=0.8),
            ]
        )
        cores = [
            Core(0, speed_factor=1.5, vulnerability_factor=0.5),
            Core(1, speed_factor=0.8, vulnerability_factor=2.0),
        ]
        assignment = {"a": 0, "b": 0}
        agg = mapping_mwtf(tasks, cores, assignment)
        per_task = [mwtf(t, cores[0]) for t in tasks]
        assert min(per_task) <= agg <= max(per_task)

    def test_better_assignment_higher_mwtf(self):
        tasks = TaskSet(
            [
                Task("a", wcet=0.01, period=0.1, vulnerability=0.9),
                Task("b", wcet=0.01, period=0.1, vulnerability=0.1),
            ]
        )
        robust = Core(0, speed_factor=1.0, vulnerability_factor=0.3)
        fragile = Core(1, speed_factor=1.0, vulnerability_factor=3.0)
        cores = [robust, fragile]
        good = mapping_mwtf(tasks, cores, {"a": 0, "b": 1})
        bad = mapping_mwtf(tasks, cores, {"a": 1, "b": 0})
        assert good > bad

    def test_mwtf_requires_finite_exec(self):
        task = Task("a", wcet=0.01, period=0.1)
        sleeping = Core(0)
        sleeping.set_power_state("sleep")
        with pytest.raises(ValueError):
            mwtf(task, sleeping)


class TestExpectedFailures:
    def test_zero_when_idle(self):
        tasks = generate_task_set(n_tasks=4, total_utilization=0.5, seed=0)
        core = Core(0)
        core.utilization = 0.0
        assert expected_failures(tasks, core, dt=1.0) == 0.0

    def test_grows_with_utilization_and_time(self):
        tasks = generate_task_set(n_tasks=4, total_utilization=0.5, seed=0)
        core = Core(0)
        core.utilization = 0.5
        low = expected_failures(tasks, core, dt=1.0)
        core.utilization = 1.0
        high = expected_failures(tasks, core, dt=1.0)
        assert high > low
        assert expected_failures(tasks, core, dt=2.0) == pytest.approx(2 * high)

    def test_lower_voltage_more_failures(self):
        tasks = generate_task_set(n_tasks=4, total_utilization=0.5, seed=0)
        core = Core(0)
        core.utilization = 0.5
        core.set_level(len(core.vf_levels) - 1)
        at_max = expected_failures(tasks, core, dt=1.0)
        core.set_level(0)
        at_min = expected_failures(tasks, core, dt=1.0)
        assert at_min > at_max


class TestPowerStates:
    def test_all_states_have_factors(self):
        assert set(IDLE_POWER_FACTOR) == {"active", "idle", "sleep", "off"}

    def test_power_ordering_across_states(self):
        powers = {}
        for state in ("active", "idle", "sleep", "off"):
            core = Core(0)
            core.utilization = 0.7
            core.set_power_state(state)
            powers[state] = total_power(core)
        assert powers["active"] > powers["idle"] > powers["sleep"] > powers["off"]
        assert powers["off"] == 0.0


class TestCoreScaledWcet:
    def test_scaled_wcet_tracks_level(self):
        task = Task("t", wcet=0.1, period=1.0)
        core = Core(0)
        core.set_level(len(core.vf_levels) - 1)
        fast = core.scaled_wcet(task)
        core.set_level(0)
        slow = core.scaled_wcet(task)
        assert slow > fast
        assert fast == pytest.approx(0.1)

    def test_speed_factor_scales(self):
        task = Task("t", wcet=0.1, period=1.0)
        big = Core(0, speed_factor=2.0)
        little = Core(1, speed_factor=0.5)
        assert big.scaled_wcet(task) < little.scaled_wcet(task)
