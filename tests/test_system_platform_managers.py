"""Integration tests: platform simulation, RL managers, mapping, replication."""

import numpy as np
import pytest

from repro.system import (
    AdaptiveReplicationManager,
    Core,
    GreedyThermalManager,
    MWTFMappingStudy,
    Platform,
    QLearningAgent,
    RandomManager,
    ReplicationEnvironment,
    RLDVFSManager,
    StaticManager,
    edf_feasible,
    first_fit_partition,
    generate_task_set,
    run_managed_simulation,
)
from repro.system.mwtf_mapping import make_heterogeneous_cores
from repro.system.rl import Discretizer
from repro.system.scheduler import load_per_core


@pytest.fixture(scope="module")
def task_set():
    return generate_task_set(n_tasks=8, total_utilization=2.0, seed=0)


class TestScheduler:
    def test_edf_bound(self, task_set):
        heavy = generate_task_set(n_tasks=3, total_utilization=1.4, seed=1)
        assert not edf_feasible(list(heavy))

    def test_first_fit_covers_all_tasks(self, task_set):
        cores = [Core(i) for i in range(4)]
        assignment = first_fit_partition(task_set, cores)
        assert set(assignment) == {t.name for t in task_set}

    def test_partition_feasible_per_core(self, task_set):
        cores = [Core(i) for i in range(4)]
        assignment = first_fit_partition(task_set, cores)
        loads = load_per_core(task_set, cores, assignment)
        assert all(u <= 1.0 + 1e-9 for u in loads)

    def test_infeasible_partition_raises(self):
        ts = generate_task_set(n_tasks=4, total_utilization=3.5, seed=2)
        with pytest.raises(ValueError):
            first_fit_partition(ts, [Core(0)])


class TestPlatform:
    def test_simulation_accumulates_metrics(self, task_set):
        cores = [Core(i) for i in range(4)]
        platform = Platform(cores, task_set, first_fit_partition(task_set, cores), seed=0)
        metrics = platform.run(duration=5.0)
        assert metrics.jobs_released > 0
        assert metrics.energy_j > 0
        assert metrics.peak_temperature_c > 40.0
        assert metrics.mttf_years > 0.0

    def test_static_max_meets_deadlines(self, task_set):
        m = run_managed_simulation(StaticManager(), task_set, n_cores=4, duration=5.0, seed=0)
        assert m.deadline_hit_rate > 0.99

    def test_lowest_level_misses_deadlines(self, task_set):
        m = run_managed_simulation(
            StaticManager(level_index=0), task_set, n_cores=4, duration=5.0, seed=0
        )
        assert m.deadline_hit_rate < 0.9

    def test_low_voltage_raises_soft_error_exposure(self):
        # Same workload, low vs high V-f: lower voltage must produce more
        # soft failures statistically (SER grows exponentially).
        ts = generate_task_set(n_tasks=6, total_utilization=1.2, seed=4)
        lo = run_managed_simulation(
            StaticManager(level_index=1), ts, n_cores=4, duration=40.0, seed=0
        )
        hi = run_managed_simulation(
            StaticManager(level_index=4), ts, n_cores=4, duration=40.0, seed=0
        )
        assert lo.soft_failures >= hi.soft_failures

    def test_remap_changes_assignment(self, task_set):
        cores = [Core(i) for i in range(4)]
        assignment = first_fit_partition(task_set, cores)
        platform = Platform(cores, task_set, assignment, seed=0)
        new_assignment = {name: 0 for name in assignment}
        platform.remap(new_assignment)
        assert all(platform.assignment[n] == 0 for n in assignment)


class TestRLInfrastructure:
    def test_discretizer_bins(self):
        d = Discretizer([np.array([1.0, 2.0]), np.array([10.0])])
        assert d((0.5, 5.0)) == (0, 0)
        assert d((1.5, 15.0)) == (1, 1)
        assert d((3.0, 15.0)) == (2, 1)

    def test_discretizer_validation(self):
        with pytest.raises(ValueError):
            Discretizer([np.array([2.0, 1.0])])
        d = Discretizer([np.array([1.0])])
        with pytest.raises(ValueError):
            d((1.0, 2.0))

    def test_qlearning_converges_on_bandit(self):
        agent = QLearningAgent(n_actions=3, alpha=0.5, epsilon=0.5, seed=0)
        rewards = {0: 0.0, 1: 1.0, 2: 0.2}
        state = (0,)
        for _ in range(300):
            a = agent.act(state)
            agent.update(state, a, rewards[a], state)
        assert agent.act(state, explore=False) == 1

    def test_epsilon_decays(self):
        agent = QLearningAgent(n_actions=2, epsilon=0.5, epsilon_decay=0.9)
        for _ in range(50):
            agent.update((0,), 0, 0.0, (0,))
        assert agent.epsilon < 0.1

    def test_agent_validation(self):
        with pytest.raises(ValueError):
            QLearningAgent(n_actions=0)
        with pytest.raises(ValueError):
            QLearningAgent(n_actions=2, alpha=0.0)


class TestManagers:
    def test_rl_beats_random(self, task_set):
        rl = RLDVFSManager(seed=0)
        m_rl = run_managed_simulation(
            rl, task_set, n_cores=4, duration=10.0, seed=0, training_episodes=5
        )
        m_rnd = run_managed_simulation(
            RandomManager(seed=1), task_set, n_cores=4, duration=10.0, seed=0
        )
        assert m_rl.deadline_hit_rate > m_rnd.deadline_hit_rate

    def test_rl_saves_energy_vs_static_max(self, task_set):
        rl = RLDVFSManager(seed=0)
        m_rl = run_managed_simulation(
            rl, task_set, n_cores=4, duration=10.0, seed=0, training_episodes=5
        )
        m_static = run_managed_simulation(
            StaticManager(), task_set, n_cores=4, duration=10.0, seed=0
        )
        assert m_rl.energy_j < m_static.energy_j
        assert m_rl.deadline_hit_rate > 0.9

    def test_greedy_thermal_reacts(self, task_set):
        mgr = GreedyThermalManager(hot_c=45.0, cool_c=30.0)
        m = run_managed_simulation(mgr, task_set, n_cores=4, duration=5.0, seed=0)
        # With a 45C threshold the governor must have throttled below max.
        assert m.energy_j < run_managed_simulation(
            StaticManager(), task_set, n_cores=4, duration=5.0, seed=0
        ).energy_j


class TestPerCoreRLDVFS:
    @pytest.fixture(scope="class")
    def skewed_tasks(self):
        from repro.system import Task, TaskSet

        return TaskSet(
            [Task(f"heavy{i}", wcet=0.08, period=0.1) for i in range(2)]
            + [Task(f"light{i}", wcet=0.004, period=0.1) for i in range(6)]
        )

    def test_one_agent_per_core(self, skewed_tasks):
        from repro.system import PerCoreRLDVFSManager

        manager = PerCoreRLDVFSManager(seed=0)
        run_managed_simulation(
            manager, skewed_tasks, n_cores=4, duration=3.0, seed=0
        )
        assert len(manager.agents) == 4

    def test_keeps_deadlines_on_skewed_load(self, skewed_tasks):
        from repro.system import PerCoreRLDVFSManager

        m = run_managed_simulation(
            PerCoreRLDVFSManager(seed=0), skewed_tasks, n_cores=4,
            duration=15.0, seed=0, training_episodes=15,
        )
        assert m.deadline_hit_rate > 0.97

    def test_saves_energy_vs_static(self, skewed_tasks):
        from repro.system import PerCoreRLDVFSManager

        static = run_managed_simulation(
            StaticManager(), skewed_tasks, n_cores=4, duration=15.0, seed=0
        )
        per = run_managed_simulation(
            PerCoreRLDVFSManager(seed=0), skewed_tasks, n_cores=4,
            duration=15.0, seed=0, training_episodes=15,
        )
        assert per.energy_j < static.energy_j

    def test_freeze_stops_learning(self, skewed_tasks):
        from repro.system import PerCoreRLDVFSManager

        manager = PerCoreRLDVFSManager(seed=0)
        run_managed_simulation(
            manager, skewed_tasks, n_cores=4, duration=3.0, seed=0
        )
        assert not manager.training  # run_managed_simulation froze it


class TestMWTFMapping:
    @pytest.fixture(scope="class")
    def study(self):
        cores = make_heterogeneous_cores(seed=0)
        s = MWTFMappingStudy(cores, seed=0)
        s.train(generate_task_set(12, total_utilization=2.0, seed=5))
        return s

    def test_oracle_beats_performance_mapping(self, study):
        ts = generate_task_set(8, total_utilization=1.8, seed=9)
        assert study.map_mwtf_oracle(ts).mwtf > study.map_performance_only(ts).mwtf

    def test_nn_mapping_captures_most_of_oracle_gain(self, study):
        ts = generate_task_set(8, total_utilization=1.8, seed=9)
        perf = study.map_performance_only(ts).mwtf
        nn = study.map_mwtf_nn(ts).mwtf
        oracle = study.map_mwtf_oracle(ts).mwtf
        assert nn > perf
        assert (nn - perf) / (oracle - perf) > 0.4

    def test_avf_estimation_reasonable(self, study):
        ts = generate_task_set(6, total_utilization=1.0, seed=11)
        assert study.estimation_error(ts) < 0.25

    def test_untrained_mapping_raises(self):
        s = MWTFMappingStudy(make_heterogeneous_cores(seed=1), seed=0)
        with pytest.raises(RuntimeError):
            s.map_mwtf_nn(generate_task_set(4, total_utilization=0.8, seed=0))


class TestReplicationManager:
    @pytest.fixture(scope="class")
    def manager(self):
        return AdaptiveReplicationManager(seed=0).train(
            lambda: ReplicationEnvironment(seed=42)
        )

    def test_adaptive_beats_static1_on_failures(self, manager):
        env_a = ReplicationEnvironment(seed=7)
        env_b = ReplicationEnvironment(seed=7)
        adaptive = manager.run_episode(env_a, manager.choose_replicas, n_epochs=400)
        static1 = manager.run_episode(env_b, lambda obs: 1, n_epochs=400)
        assert adaptive.failure_rate < static1.failure_rate

    def test_adaptive_cheaper_than_static5(self, manager):
        env_a = ReplicationEnvironment(seed=8)
        env_b = ReplicationEnvironment(seed=8)
        adaptive = manager.run_episode(env_a, manager.choose_replicas, n_epochs=400)
        static5 = manager.run_episode(env_b, lambda obs: 5, n_epochs=400)
        assert adaptive.overhead < static5.overhead

    def test_replica_choice_tracks_regime(self, manager):
        env = ReplicationEnvironment(seed=3)
        env.regime = 2
        harsh_choice = manager.choose_replicas(env.observe())
        env.regime = 0
        benign_choice = manager.choose_replicas(env.observe())
        assert harsh_choice >= benign_choice

    def test_untrained_manager_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveReplicationManager().choose_replicas(np.zeros(3))

    def test_majority_voting_fails_only_on_majority(self):
        env = ReplicationEnvironment(seed=0)
        env.regime = 2
        fails = sum(env.job_fails(5) for _ in range(2000))
        env2 = ReplicationEnvironment(seed=0)
        env2.regime = 2
        fails1 = sum(env2.job_fails(1) for _ in range(2000))
        assert fails < fails1
