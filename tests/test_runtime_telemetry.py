"""Telemetry edge cases (repro.runtime.telemetry): ETA on resumed
campaigns, progress during pool respawns, and retry accounting."""

import io

import pytest

from repro.runtime import (
    CampaignRunner,
    ChaosSpec,
    ChaosWorker,
    FaultPolicy,
    ProgressEvent,
    ProgressLog,
    ResultCache,
    print_progress,
)

from tests.test_runtime import _draw_chunk
from tests.test_runtime_fault import FAST, _InterruptAfter


def _event(**overrides):
    base = dict(done=50, total=100, cached=0, elapsed_s=5.0,
                trials_per_sec=10.0, histogram={})
    base.update(overrides)
    return ProgressEvent(**base)


class TestEtaOnResumedCampaigns:
    def test_eta_none_while_only_journaled_units_replayed(self):
        # A resumed campaign's first event replays journaled units only:
        # done == cached, nothing executed, no throughput to extrapolate.
        event = _event(done=40, cached=40, trials_per_sec=0.0)
        assert event.executed == 0
        assert event.eta_s is None

    def test_eta_excludes_journaled_throughput(self):
        # 40 journaled + 10 executed in 2s: rate must be 5/s (not 25/s),
        # and the ETA must cover the 50 remaining trials at that rate.
        event = _event(done=50, cached=40, elapsed_s=2.0, trials_per_sec=5.0)
        assert event.executed == 10
        assert event.eta_s == pytest.approx(50 / 5.0)

    def test_resumed_campaign_events_extrapolate_from_executed_only(
            self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                jobs=1, chunk_size=7, cache=cache, progress=_InterruptAfter(3),
            ).run_trials(_draw_chunk, 70, seed=5)
        log = ProgressLog()
        resumed = CampaignRunner(jobs=1, chunk_size=7, cache=cache,
                                 resume=True, progress=log)
        resumed.run_trials(_draw_chunk, 70, seed=5)
        first = log.events[0]
        # The journal-replay event: all done trials are cached, no rate.
        assert first.cached == first.done > 0
        assert first.executed == 0
        assert first.eta_s is None
        # Once real execution starts, the rate counts executed trials only.
        executing = [e for e in log.events if e.executed > 0]
        assert executing
        for event in executing:
            assert event.trials_per_sec * event.elapsed_s == pytest.approx(
                event.executed, rel=0.05
            )
        assert log.last.done == 70

    def test_print_progress_says_all_from_cache_for_pure_replay(self):
        stream = io.StringIO()
        print_progress(_event(done=40, cached=40, trials_per_sec=0.0,
                              cache_hits=5), stream=stream)
        assert "all from cache" in stream.getvalue()


class TestProgressDuringPoolRespawn:
    def test_respawn_emits_progress_and_preserves_monotonicity(self, tmp_path):
        spec = ChaosSpec(exit_rate=0.3, seed=4)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        log = ProgressLog()
        policy = FaultPolicy(max_retries=4, max_pool_respawns=8, **FAST)
        runner = CampaignRunner(jobs=4, chunk_size=7, policy=policy,
                                progress=log)
        runner.run_trials(worker, 80, seed=5)
        assert runner.stats.pool_respawns > 0
        # Respawn-time events exist (done may not have advanced, but the
        # campaign still reported in) ...
        assert any(e.pool_respawns > 0 for e in log.events)
        # ... and the stream stays monotonic in done and in respawns.
        dones = [e.done for e in log.events]
        assert dones == sorted(dones)
        respawns = [e.pool_respawns for e in log.events]
        assert respawns == sorted(respawns)
        assert log.last.pool_respawns == runner.stats.pool_respawns
        assert log.last.done == 80

    def test_print_progress_renders_respawns(self):
        stream = io.StringIO()
        print_progress(_event(pool_respawns=2), stream=stream)
        assert "2 respawns" in stream.getvalue()


class TestRetryAccounting:
    def test_event_retries_track_runner_stats(self, tmp_path):
        spec = ChaosSpec(raise_rate=0.5, seed=2)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        log = ProgressLog()
        runner = CampaignRunner(jobs=1, chunk_size=7,
                                policy=FaultPolicy(max_retries=2, **FAST),
                                progress=log)
        runner.run_trials(worker, 80, seed=5)
        assert runner.stats.retries > 0
        assert log.last.retries == runner.stats.retries
        retries = [e.retries for e in log.events]
        assert retries == sorted(retries)

    def test_retries_default_to_zero_on_clean_runs(self):
        log = ProgressLog()
        CampaignRunner(jobs=1, chunk_size=10, progress=log).run_trials(
            _draw_chunk, 40, seed=0
        )
        assert all(e.retries == 0 and e.pool_respawns == 0 for e in log.events)

    def test_print_progress_renders_retries(self):
        stream = io.StringIO()
        print_progress(_event(retries=3), stream=stream)
        assert "3 retries" in stream.getvalue()
