"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    precision_score,
    r2_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_partial(self):
        assert accuracy_score([1, 0, 1, 0], [1, 1, 1, 0]) == 0.75

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        # TP=2, FP=1, FN=1
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        assert precision_score([1, 0], [0, 0]) == 0.0

    def test_no_positive_truth(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    def test_f1_zero_when_both_zero(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_custom_positive_label(self):
        assert recall_score(["a", "b"], ["a", "a"], positive="a") == 1.0


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        cm = confusion_matrix([0, 1, 2], [0, 1, 2])
        assert np.trace(cm) == 3
        assert cm.sum() == 3

    def test_off_diagonal(self):
        cm = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert cm[0, 1] == 1
        assert cm[0, 0] == 1
        assert cm[1, 1] == 1

    def test_explicit_size(self):
        cm = confusion_matrix([0], [0], n_classes=4)
        assert cm.shape == (4, 4)


class TestRegressionMetrics:
    def test_mse_mae(self):
        assert mean_squared_error([1, 2], [1, 4]) == 2.0
        assert mean_absolute_error([1, 2], [1, 4]) == 1.0

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2, 2, 2], [1, 2, 3]) == 0.0

    def test_mape(self):
        assert mean_absolute_percentage_error([2.0, 4.0], [1.0, 4.0]) == pytest.approx(0.25)
