"""Property-based tests (hypothesis) on domain-model invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.circuit.cell import LookupTable
from repro.core import CheckpointSystem, prob_no_error
from repro.system.reliability_models import combined_mttf, em_mttf, tddb_mttf
from repro.system.ser import soft_error_rate
from repro.transistor import SelfHeatingModel, Transistor, alpha_power_delay

finite = st.floats(allow_nan=False, allow_infinity=False)


@given(
    st.floats(min_value=20.0, max_value=800.0),
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.05, max_value=0.45),
    st.floats(min_value=0.5, max_value=64.0),
)
@settings(max_examples=60, deadline=None)
def test_alpha_power_delay_positive_and_monotone_in_load(width, fins, vth, load):
    t = Transistor(width_nm=width, n_fins=fins, vth=vth)
    d1 = alpha_power_delay(t, load)
    d2 = alpha_power_delay(t, load * 2.0)
    assert d1 > 0
    assert d2 > d1


@given(
    st.floats(min_value=0.0, max_value=200.0),
    st.floats(min_value=0.0, max_value=64.0),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_self_heating_nonnegative_and_bounded(slew, load, activity):
    she = SelfHeatingModel()
    dt = she.delta_t(Transistor(), slew, load, activity=activity)
    assert 0.0 <= dt < 200.0


@given(
    st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=2, max_size=6, unique=True),
    st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=2, max_size=6, unique=True),
    st.floats(min_value=-1e5, max_value=1e5),
    st.floats(min_value=-1e4, max_value=1e4),
)
@settings(max_examples=60, deadline=None)
def test_lookup_table_output_within_value_range(slews, loads, q_slew, q_load):
    slews = sorted(slews)
    loads = sorted(loads)
    rng = np.random.default_rng(0)
    values = rng.uniform(1.0, 100.0, (len(slews), len(loads)))
    table = LookupTable(slews, loads, values)
    out = table(q_slew, q_load)
    # Bilinear interpolation with clamping can never leave the value hull.
    assert values.min() - 1e-9 <= out <= values.max() + 1e-9


@given(
    st.floats(min_value=1e-9, max_value=1e-3),
    st.integers(min_value=1_000, max_value=400_000),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_checkpoint_cycles_affine_in_rollbacks(p, n_c, n_rb):
    cp = CheckpointSystem(p)
    base = cp.segment_cycles_with_rollbacks(n_c, 0)
    with_rb = cp.segment_cycles_with_rollbacks(n_c, n_rb)
    per_retry = cp.rollback_cycles + n_c + cp.checkpoint_cycles
    assert with_rb == base + n_rb * per_retry


@given(
    st.floats(min_value=1e-9, max_value=0.5),
    st.integers(min_value=1, max_value=1_000_000),
    st.integers(min_value=1, max_value=1_000_000),
)
@settings(max_examples=60, deadline=None)
def test_prob_no_error_multiplicative(p, n1, n2):
    # Independence across disjoint intervals: q(n1+n2) = q(n1) * q(n2).
    lhs = prob_no_error(p, n1 + n2)
    rhs = prob_no_error(p, n1) * prob_no_error(p, n2)
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-300)


@given(st.floats(min_value=0.4, max_value=1.2))
@settings(max_examples=40, deadline=None)
def test_ser_positive_and_monotone(voltage):
    s1 = float(soft_error_rate(voltage))
    s2 = float(soft_error_rate(voltage + 0.05))
    assert s1 > 0
    assert s2 < s1


@given(
    st.floats(min_value=30.0, max_value=130.0),
    st.floats(min_value=0.6, max_value=1.2),
)
@settings(max_examples=40, deadline=None)
def test_combined_mttf_positive_and_below_components(temperature, voltage):
    total = float(combined_mttf(temperature, voltage=voltage))
    assert total > 0
    assert total <= float(em_mttf(temperature)) + 1e-9
    assert total <= float(tddb_mttf(temperature, voltage=voltage)) + 1e-9


@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_netlist_generator_always_acyclic(n_instances_factor, seed):
    from repro.circuit import build_default_library, synthesize_core

    library = build_default_library()
    n = n_instances_factor * 12  # at least one per level
    netlist = synthesize_core(library, n_instances=n, n_levels=12, seed=seed)
    order = netlist.topological_order()
    assert len(order) == n
    # Every driver precedes its sink in the order.
    position = {name: i for i, name in enumerate(order)}
    for inst in netlist:
        for driver in inst.fanin.values():
            if driver in position:
                assert position[driver] < position[inst.name]
