"""Tests for repro.ml.linear."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, LogisticRegression, RidgeRegression


class TestLinearRegression:
    def test_recovers_exact_line(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = 3.0 * X.ravel() - 2.0
        m = LinearRegression().fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0)
        assert m.intercept_ == pytest.approx(-2.0)

    def test_multivariate(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 4.0
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.coef_, [1.0, -2.0, 0.5], atol=1e-8)

    def test_1d_input_accepted(self):
        m = LinearRegression().fit(np.arange(10.0), 2 * np.arange(10.0))
        assert m.predict(np.array([5.0]))[0] == pytest.approx(10.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((2, 1)))


class TestRidgeRegression:
    def test_shrinks_towards_zero(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([5.0, -5.0]) + rng.normal(0, 0.1, 50)
        small = RidgeRegression(alpha=0.01).fit(X, y)
        large = RidgeRegression(alpha=100.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_bias_not_regularized(self):
        y_offset = 100.0
        X = np.random.default_rng(2).normal(size=(100, 1))
        y = 0.0 * X.ravel() + y_offset
        m = RidgeRegression(alpha=1000.0).fit(X, y)
        assert m.intercept_ == pytest.approx(y_offset, rel=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestLogisticRegression:
    def test_separable_data(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(-2, 0.5, (50, 2)), rng.normal(2, 0.5, (50, 2))])
        y = np.repeat([0, 1], 50)
        m = LogisticRegression(lr=0.5, n_iter=300).fit(X, y)
        assert np.mean(m.predict(X) == y) > 0.98

    def test_probabilities_in_range(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        m = LogisticRegression().fit(X, y)
        p = m.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((3, 1)), [0, 1, 2])

    def test_string_labels_preserved(self):
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(-2, 0.3, (30, 1)), rng.normal(2, 0.3, (30, 1))])
        y = np.array(["neg"] * 30 + ["pos"] * 30)
        m = LogisticRegression(lr=0.5, n_iter=200).fit(X, y)
        assert set(m.predict(X)) <= {"neg", "pos"}
