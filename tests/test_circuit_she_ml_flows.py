"""Integration tests for the Fig. 3 SHE flow, ML characterization, guardbands."""

import numpy as np
import pytest

from repro.circuit import (
    MLCharacterizer,
    SheFlow,
    SpiceLikeCharacterizer,
    StaticTimingAnalysis,
    build_default_library,
    guardband_comparison,
    synthesize_core,
)


@pytest.fixture(scope="module")
def setup():
    lib = build_default_library()
    ch = SpiceLikeCharacterizer()
    ch.characterize_library(lib)
    net = synthesize_core(lib, n_instances=150, seed=0)
    return lib, ch, net


class TestSheFlow:
    def test_report_covers_all_instances(self, setup):
        lib, ch, net = setup
        report = SheFlow(ch).run(net, lib)
        assert set(report.instance_delta_t) == set(net.instance_names())

    def test_temperatures_positive_and_varied(self, setup):
        lib, ch, net = setup
        report = SheFlow(ch).run(net, lib)
        lo, mean, hi = report.spread()
        assert lo > 0.0
        assert hi > 2 * lo  # the Fig. 2 point: wide per-instance variety

    def test_same_cell_type_sees_different_she(self, setup):
        # Fig. 2's message: a single cell type experiences many different
        # SHE temperatures depending on its instance context.
        lib, ch, net = setup
        report = SheFlow(ch).run(net, lib)
        by_type = report.per_cell_type()
        multi = [temps for temps in by_type.values() if len(temps) >= 5]
        assert multi, "expected cell types with several instances"
        assert any(max(t) - min(t) > 0.5 for t in multi)

    def test_sdf_contains_temperatures(self, setup):
        lib, ch, net = setup
        report = SheFlow(ch).run(net, lib)
        assert "IOPATH" in report.sdf_text

    def test_uncharacterized_library_rejected(self, setup):
        _, ch, net = setup
        bare = build_default_library()
        with pytest.raises(ValueError):
            SheFlow(ch).build_she_library(bare)

    def test_histogram_bins(self, setup):
        lib, ch, net = setup
        report = SheFlow(ch).run(net, lib)
        counts, edges = report.histogram(bins=8)
        assert counts.sum() == len(net)
        assert len(edges) == 9


class TestMLCharacterizer:
    @pytest.fixture(scope="class")
    def fitted(self, setup):
        lib, ch, _ = setup
        ml = MLCharacterizer(oracle=ch, seed=0)
        ml.fit(lib, n_samples=1200)
        return ml

    def test_validation_error_small(self, fitted, setup):
        lib, _, _ = setup
        mape = fitted.validate(lib, n_samples=150)
        assert mape < 0.05

    def test_predict_monotone_in_temperature(self, fitted, setup):
        lib, _, _ = setup
        cell = lib.get("NAND2_X2")
        cool = fitted.predict_delay(cell, 20.0, 4.0, temperature_c=30.0)
        hot = fitted.predict_delay(cell, 20.0, 4.0, temperature_c=140.0)
        assert hot > cool * 0.99  # allow tiny model noise, trend must hold

    def test_instance_library_covers_netlist(self, fitted, setup):
        lib, _, net = setup
        temps = {name: 50.0 for name in net.instance_names()}
        inst_lib, resolver = fitted.generate_instance_library(net, lib, temps)
        assert len(inst_lib) == len(net)
        for inst in net:
            cell = resolver(inst)
            assert cell.arcs
            assert cell.name.endswith(f"@{inst.name}")

    def test_sta_runs_on_instance_library(self, fitted, setup):
        lib, _, net = setup
        temps = {name: 80.0 for name in net.instance_names()}
        _, resolver = fitted.generate_instance_library(net, lib, temps)
        sta = StaticTimingAnalysis(net, lib, cell_resolver=resolver).run()
        assert sta.min_feasible_period() > 0

    def test_unfitted_raises(self, setup):
        lib, ch, _ = setup
        with pytest.raises(RuntimeError):
            MLCharacterizer(oracle=ch).predict_delay(lib.get("INV_X1"), 20.0, 4.0)


class TestGuardbandComparison:
    @pytest.fixture(scope="class")
    def result(self, setup):
        _, _, net = setup
        return guardband_comparison(
            net, build_default_library, ml_training_samples=3000, seed=0
        )

    def test_worst_case_most_pessimistic(self, result):
        assert result.worst_case_period > result.nominal_period

    def test_she_aware_between_nominal_and_worst(self, result):
        # Allow small ML noise below nominal but the ordering vs worst-case
        # (the paper's claim) must hold strictly.
        assert result.she_aware_period < result.worst_case_period
        assert result.she_aware_period > 0.95 * result.nominal_period

    def test_guardband_reduction_positive(self, result):
        assert result.guardband_reduction > 0.0

    def test_performance_gain_positive(self, result):
        assert result.performance_gain > 0.0

    def test_ml_error_well_below_effect(self, result):
        assert result.ml_validation_mape < 0.03
