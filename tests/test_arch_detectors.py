"""Tests for crossbar criticality, symptom detection, and WarningNet."""

import numpy as np
import pytest

from repro.arch import Crossbar, CrossbarFaultStudy, SymptomDetector, WarningNet
from repro.arch.warning_net import make_image_dataset, perturb, warning_features
from repro.ml import MLPClassifier, train_test_split


def _hard_dataset(n=500, side=8, n_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    X = np.zeros((n, side * side))
    y = np.zeros(n, dtype=int)
    half = side // 2
    for i in range(n):
        img = rng.normal(0.0, 0.35, (side, side))
        cls = int(rng.integers(n_classes))
        r0 = 0 if cls in (0, 1) else half
        c0 = 0 if cls in (0, 2) else half
        rr = r0 + rng.integers(half - 1)
        cc = c0 + rng.integers(half - 1)
        img[rr : rr + 2, cc : cc + 2] += 0.9
        X[i] = img.ravel()
        y[i] = cls
    return X, y


@pytest.fixture(scope="module")
def mission_small():
    X, y = _hard_dataset(n=500, seed=0)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.4, seed=0)
    model = MLPClassifier(hidden=(12,), n_epochs=120, lr=3e-3, seed=0).fit(Xtr, ytr)
    return model, Xte, yte


@pytest.fixture(scope="module")
def mission_big():
    X, y = make_image_dataset(n_samples=500, seed=3)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.4, seed=0)
    model = MLPClassifier(hidden=(64, 32), n_epochs=120, lr=3e-3, seed=0).fit(Xtr, ytr)
    return model, Xtr, Xte, ytr, yte


class TestCrossbar:
    def test_effective_weights_apply_faults(self):
        xbar = Crossbar(np.array([[1.0, -2.0], [0.5, 0.25]]))
        xbar.inject_stuck_at(0, 1, stuck_on=False)
        W = xbar.effective_weights()
        assert W[0, 1] == 0.0
        assert W[0, 0] == 1.0

    def test_stuck_on_keeps_sign(self):
        xbar = Crossbar(np.array([[1.0, -2.0]]))
        xbar.inject_stuck_at(0, 1, stuck_on=True)
        assert xbar.effective_weights()[0, 1] == -2.0  # g_max = 2, sign kept

    def test_clear_faults(self):
        xbar = Crossbar(np.ones((2, 2)))
        xbar.inject_stuck_at(0, 0, stuck_on=False)
        xbar.clear_faults()
        assert np.array_equal(xbar.effective_weights(), np.ones((2, 2)))

    def test_out_of_range_fault_rejected(self):
        with pytest.raises(ValueError):
            Crossbar(np.ones((2, 2))).inject_stuck_at(5, 0, True)

    def test_matvec_through_faults(self):
        xbar = Crossbar(np.eye(2))
        xbar.inject_stuck_at(1, 1, stuck_on=False)
        out = xbar.matvec(np.array([1.0, 1.0]))
        assert np.allclose(out, [1.0, 0.0])


class TestCrossbarFaultStudy:
    @pytest.fixture(scope="class")
    def study(self, mission_small):
        model, Xte, yte = mission_small
        return CrossbarFaultStudy(model, Xte[:180], yte[:180], criticality_threshold=0.008)

    def test_weights_restored_after_measurement(self, study, mission_small):
        model, _, _ = mission_small
        before = [W.copy() for W in model.weights_]
        study.measure_fault(0, 0, 0, stuck_on=True)
        for a, b in zip(before, model.weights_):
            assert np.array_equal(a, b)

    def test_sampled_labels_mixed(self, study):
        _, labels = study.sample_faults(n_faults=150, seed=1)
        assert 0.03 < labels.mean() < 0.8

    def test_predictor_accuracy(self, study):
        descs, labels = study.sample_faults(n_faults=500, seed=1)
        predictor, _ = study.train_criticality_predictor(descs, labels, seed=0)
        d2, l2 = study.sample_faults(n_faults=150, seed=2)
        acc = float(np.mean(predictor(d2) == l2))
        assert acc > 0.85

    def test_redundancy_savings_definition(self):
        assert CrossbarFaultStudy.redundancy_savings(np.array([0, 0, 1, 0])) == 0.75

    def test_empty_predictions_rejected(self):
        with pytest.raises(ValueError):
            CrossbarFaultStudy.redundancy_savings(np.array([]))

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            CrossbarFaultStudy(MLPClassifier(), np.ones((2, 2)), np.zeros(2))


class TestSymptomDetector:
    @pytest.fixture(scope="class")
    def detector(self, mission_big):
        model, Xtr, _, _, _ = mission_big
        return SymptomDetector(model, seed=0).fit(Xtr[:200])

    def test_high_recall_precision(self, detector, mission_big):
        _, _, Xte, _, _ = mission_big
        report = detector.evaluate(Xte[:120])
        assert report.recall > 0.9
        assert report.precision > 0.9

    def test_low_overhead(self, detector, mission_big):
        _, _, Xte, _, _ = mission_big
        report = detector.evaluate(Xte[:60])
        assert report.overhead < 0.1  # small-percent compute overhead

    def test_unfitted_evaluate_raises(self, mission_big):
        model, _, Xte, _, _ = mission_big
        with pytest.raises(RuntimeError):
            SymptomDetector(model).evaluate(Xte[:10])


class TestWarningNet:
    @pytest.fixture(scope="class")
    def warning(self, mission_big):
        model, Xtr, _, ytr, _ = mission_big
        return WarningNet(model, seed=0).fit(Xtr[:220], ytr[:220])

    def test_perturbations_change_inputs(self):
        X, _ = make_image_dataset(30, seed=0)
        for kind in ("noise", "blur", "occlusion"):
            Xp = perturb(X, kind, severity=0.8, rng=np.random.default_rng(0))
            assert not np.allclose(Xp, X)

    def test_zero_severity_noop_for_noise(self):
        X, _ = make_image_dataset(10, seed=1)
        Xp = perturb(X, "noise", severity=0.0, rng=np.random.default_rng(0))
        assert np.allclose(Xp, X)

    def test_invalid_perturbation_rejected(self):
        X, _ = make_image_dataset(5, seed=2)
        with pytest.raises(ValueError):
            perturb(X, "fog", 0.5)
        with pytest.raises(ValueError):
            perturb(X, "noise", 1.5)

    def test_feature_shape(self):
        X, _ = make_image_dataset(20, seed=3)
        assert warning_features(X).shape == (20, 7)

    def test_warning_quality(self, warning, mission_big):
        _, _, Xte, _, yte = mission_big
        report = warning.evaluate(Xte[:150], yte[:150])
        assert report.recall > 0.7  # catches most failure-inducing inputs
        assert report.accuracy > 0.7

    def test_cost_fraction_small(self, warning, mission_big):
        _, _, Xte, _, yte = mission_big
        report = warning.evaluate(Xte[:40], yte[:40])
        # The paper's claim: ~1/20 of the mission-task cost.
        assert report.cost_ratio < 0.1

    def test_unfitted_warn_raises(self, mission_big):
        model, _, Xte, _, _ = mission_big
        with pytest.raises(RuntimeError):
            WarningNet(model).warn(Xte[:5])
