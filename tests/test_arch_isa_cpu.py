"""Tests for the ISA and CPU simulator."""

import numpy as np
import pytest

from repro.arch import programs as P
from repro.arch.cpu import CPU, CrashError, pack_instruction, unpack_instruction
from repro.arch.isa import (
    Instruction,
    Opcode,
    Program,
    add,
    addi,
    beq,
    halt,
    jmp,
    ld,
    lui,
    st,
    sub,
)


class TestInstruction:
    def test_register_bounds(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=16)

    def test_reads_writes_arith(self):
        i = add(3, 1, 2)
        assert i.reads == (1, 2)
        assert i.writes == 3

    def test_reads_writes_store(self):
        i = st(5, 2, 10)
        assert set(i.reads) == {2, 5}
        assert i.writes is None

    def test_branch_has_no_write(self):
        assert beq(1, 2, 5).writes is None

    def test_str_contains_opcode(self):
        assert "add" in str(add(1, 2, 3))


class TestProgram:
    def test_must_end_with_halt(self):
        with pytest.raises(ValueError):
            Program("bad", [addi(1, 0, 1)], output_range=(0, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program("bad", [], output_range=(0, 1))

    def test_empty_output_range_rejected(self):
        with pytest.raises(ValueError):
            Program("bad", [halt()], output_range=(0, 0))


class TestPackUnpack:
    def test_roundtrip_all_opcodes(self):
        for op in Opcode:
            instr = Instruction(op, rd=3, rs1=7, rs2=11, imm=-42)
            assert unpack_instruction(pack_instruction(instr)) == instr

    def test_corrupted_opcode_field_may_crash(self):
        word = pack_instruction(halt())
        # Force an out-of-range opcode index.
        word |= 0x1F << 27
        with pytest.raises(CrashError):
            unpack_instruction(word)

    def test_imm_sign_roundtrip(self):
        instr = jmp(-7)
        assert unpack_instruction(pack_instruction(instr)).imm == -7


class TestCPUExecution:
    def test_program_semantics_vector_add(self):
        prog = P.vector_add(8, seed=5)
        out = CPU(prog).run().output(prog.output_range)
        a = [prog.initial_memory[i] for i in range(8)]
        b = [prog.initial_memory[100 + i] for i in range(8)]
        assert list(out) == [x + y for x, y in zip(a, b)]

    def test_program_semantics_matmul(self):
        prog = P.matmul(3, seed=7)
        out = CPU(prog).run().output(prog.output_range)
        A = np.array([prog.initial_memory[i] for i in range(9)]).reshape(3, 3)
        B = np.array([prog.initial_memory[100 + i] for i in range(9)]).reshape(3, 3)
        assert list(out) == (A @ B).ravel().tolist()

    def test_program_semantics_sort(self):
        prog = P.bubble_sort(8, seed=9)
        out = CPU(prog).run().output(prog.output_range)
        assert list(out) == sorted(prog.initial_memory[i] for i in range(8))

    def test_program_semantics_fibonacci(self):
        prog = P.fibonacci(10)
        out = CPU(prog).run().output(prog.output_range)
        assert list(out) == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_program_semantics_fir_filter(self):
        prog = P.fir_filter(12, 3, seed=5)
        out = CPU(prog).run().output(prog.output_range)
        h = [prog.initial_memory[i] for i in range(3)]
        x = [prog.initial_memory[100 + i] for i in range(12)]
        assert out == tuple(
            sum(h[j] * x[i + j] for j in range(3)) for i in range(10)
        )

    def test_program_semantics_binary_search(self):
        import bisect

        for seed in range(6):
            prog = P.binary_search(12, seed=seed)
            out = CPU(prog).run().output(prog.output_range)
            data = [prog.initial_memory[i] for i in range(12)]
            target = prog.initial_memory[300]
            if target in data:
                assert data[out[0]] == target
            else:
                assert out[0] == bisect.bisect_left(data, target)

    def test_all_programs_run_clean(self):
        for prog in P.all_programs():
            result = CPU(prog, max_cycles=500_000).run()
            assert result.halted
            assert result.cycles > 0

    def test_r0_hardwired_to_zero(self):
        prog = Program(
            "r0test",
            [addi(0, 0, 99), st(0, 0, 10), halt()],
            output_range=(10, 1),
        )
        assert CPU(prog).run().output((10, 1)) == (0,)

    def test_deterministic_cycles(self):
        prog = P.checksum(8)
        assert CPU(prog).run().cycles == CPU(prog).run().cycles

    def test_hang_detection(self):
        prog = Program("spin", [jmp(-1), halt()], output_range=(0, 1))
        with pytest.raises(TimeoutError):
            CPU(prog, max_cycles=100).run()

    def test_bad_pc_crashes(self):
        prog = Program("wild", [jmp(1000), halt()], output_range=(0, 1))
        with pytest.raises(CrashError):
            CPU(prog).run()

    def test_bad_memory_crashes(self):
        prog = Program(
            "badmem",
            [lui(1, 0x7FFF), Instruction(Opcode.SHL, rd=1, rs1=1, rs2=2),
             addi(2, 0, 8), Instruction(Opcode.SHL, rd=1, rs1=1, rs2=2),
             ld(3, 1, 0), halt()],
            output_range=(0, 1),
        )
        # r1 becomes large after shifting; load from it must crash.
        prog2 = Program(
            "badmem2",
            [addi(2, 0, 21), lui(1, 1), Instruction(Opcode.SHL, rd=1, rs1=1, rs2=2),
             ld(3, 1, 0), halt()],
            output_range=(0, 1),
        )
        with pytest.raises(CrashError):
            CPU(prog2).run()


class TestFaultInjectionMechanics:
    def test_flip_register_bit(self):
        prog = P.fibonacci(5)
        cpu = CPU(prog)
        cpu.reset()
        cpu.registers[3] = 0
        cpu.flip_bit("reg3", 4)
        assert cpu.registers[3] == 16

    def test_flip_r0_is_masked(self):
        prog = P.fibonacci(5)
        cpu = CPU(prog)
        cpu.reset()
        cpu.flip_bit("reg0", 7)
        assert cpu.registers[0] == 0

    def test_flip_pc_changes_flow(self):
        prog = P.fibonacci(5)
        golden = CPU(prog).run().cycles
        cpu = CPU(prog, max_cycles=4 * golden)
        outcome = "completed"
        try:
            cpu.run(fault=(3, "pc", 3))
        except (CrashError, TimeoutError):
            outcome = "failed"
        # Either way the fault must not corrupt the simulator itself.
        assert outcome in ("completed", "failed")

    def test_invalid_element_rejected(self):
        cpu = CPU(P.fibonacci(5))
        with pytest.raises(ValueError):
            cpu.flip_bit("cache0", 0)

    def test_invalid_bit_rejected(self):
        cpu = CPU(P.fibonacci(5))
        with pytest.raises(ValueError):
            cpu.flip_bit("reg1", 32)

    def test_state_elements_list(self):
        cpu = CPU(P.fibonacci(5))
        elements = cpu.state_elements()
        assert "reg0" in elements and "pc" in elements and "ir" in elements
        assert len(elements) == 18
