"""Tests and properties for hypervector primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.hypervector import (
    bind,
    bundle,
    cosine_similarity,
    flip_components,
    hamming_similarity,
    permute,
    random_hypervector,
)


class TestRandomHypervector:
    def test_bipolar_components(self):
        hv = random_hypervector(1000, np.random.default_rng(0))
        assert set(np.unique(hv)) <= {-1, 1}

    def test_roughly_balanced(self):
        hv = random_hypervector(10000, np.random.default_rng(1))
        assert abs(hv.mean()) < 0.05

    def test_independent_vectors_near_orthogonal(self):
        rng = np.random.default_rng(2)
        a = random_hypervector(8192, rng)
        b = random_hypervector(8192, rng)
        assert abs(cosine_similarity(a, b)) < 0.05

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            random_hypervector(0)


class TestBind:
    def test_self_inverse(self):
        rng = np.random.default_rng(3)
        a = random_hypervector(2048, rng)
        b = random_hypervector(2048, rng)
        assert np.array_equal(bind(bind(a, b), b), a)

    def test_result_dissimilar_to_operands(self):
        rng = np.random.default_rng(4)
        a = random_hypervector(8192, rng)
        b = random_hypervector(8192, rng)
        assert abs(cosine_similarity(bind(a, b), a)) < 0.05

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bind(np.ones(4), np.ones(5))


class TestBundle:
    def test_result_similar_to_members(self):
        rng = np.random.default_rng(5)
        members = [random_hypervector(8192, rng) for _ in range(5)]
        out = bundle(members)
        for m in members:
            assert cosine_similarity(out, m) > 0.2

    def test_result_bipolar_even_count(self):
        rng = np.random.default_rng(6)
        members = [random_hypervector(512, rng) for _ in range(4)]
        out = bundle(members, rng=rng)
        assert set(np.unique(out)) <= {-1, 1}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bundle([])


class TestPermute:
    def test_invertible(self):
        rng = np.random.default_rng(7)
        a = random_hypervector(1024, rng)
        assert np.array_equal(permute(permute(a, 3), -3), a)

    def test_dissimilar_to_original(self):
        rng = np.random.default_rng(8)
        a = random_hypervector(8192, rng)
        assert abs(cosine_similarity(permute(a, 1), a)) < 0.05


class TestSimilarity:
    def test_cosine_self_is_one(self):
        a = random_hypervector(256, np.random.default_rng(9))
        assert cosine_similarity(a, a) == pytest.approx(1.0)

    def test_hamming_self_is_one(self):
        a = random_hypervector(256, np.random.default_rng(10))
        assert hamming_similarity(a, a) == 1.0

    def test_hamming_negation_is_zero(self):
        a = random_hypervector(256, np.random.default_rng(11))
        assert hamming_similarity(a, -a) == 0.0

    def test_zero_vector_cosine(self):
        assert cosine_similarity(np.zeros(8), np.ones(8)) == 0.0


class TestFlipComponents:
    def test_flip_rate_respected(self):
        rng = np.random.default_rng(12)
        a = random_hypervector(20000, rng)
        noisy = flip_components(a, 0.3, rng)
        rate = np.mean(noisy != a)
        assert abs(rate - 0.3) < 0.02

    def test_zero_rate_identity(self):
        a = random_hypervector(128, np.random.default_rng(13))
        assert np.array_equal(flip_components(a, 0.0), a)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            flip_components(np.ones(4), 1.5)


@given(st.integers(64, 1024), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_bind_commutative_property(dim, seed):
    rng = np.random.default_rng(seed)
    a = random_hypervector(dim, rng)
    b = random_hypervector(dim, rng)
    assert np.array_equal(bind(a, b), bind(b, a))


@given(st.integers(64, 512), st.integers(0, 2**31 - 1), st.integers(-5, 5))
@settings(max_examples=30, deadline=None)
def test_permute_preserves_multiset(dim, seed, shift):
    a = random_hypervector(dim, np.random.default_rng(seed))
    assert sorted(permute(a, shift).tolist()) == sorted(a.tolist())
