"""Tests for the cross-layer aging management loop (Sec. VI-A)."""

import numpy as np
import pytest

from repro.core.cross_layer import (
    AgingAwareSystem,
    compare_strategies,
    run_mission,
)


@pytest.fixture(scope="module")
def system():
    return AgingAwareSystem(
        nominal_delay_ps=500.0, vdd=0.8, vth0=0.30, duty_cycle=0.5,
        temperature_c=85.0,
    )


class TestAgingAwareSystem:
    def test_delay_grows_with_age(self, system):
        one_year = 3.154e7
        assert system.delay_at(10 * one_year) > system.delay_at(one_year)
        assert system.delay_at(one_year) > system.delay_at(0)

    def test_fresh_delay_is_nominal(self, system):
        assert system.delay_at(0) == pytest.approx(500.0)

    def test_safe_frequency_decreases(self, system):
        one_year = 3.154e7
        assert system.safe_frequency_at(10 * one_year) < system.safe_frequency_at(
            one_year
        )

    def test_higher_vdd_restores_speed(self, system):
        one_year = 3.154e7
        t = 5 * one_year
        assert system.delay_at(t, vdd=0.9) < system.delay_at(t, vdd=0.8)

    def test_extreme_aging_yields_infinite_delay(self):
        # A system stressed to where overdrive collapses must be flagged.
        hot = AgingAwareSystem(vdd=0.45, vth0=0.40, temperature_c=150.0)
        assert hot.delay_at(3.154e9) == float("inf")

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            AgingAwareSystem(nominal_delay_ps=0.0)


class TestRunMission:
    def test_worst_case_never_violates(self, system):
        log = run_mission(system, "static_worst_case", mission_years=10.0)
        assert log.violations == 0

    def test_nominal_violates_eventually(self, system):
        log = run_mission(system, "static_nominal", mission_years=10.0)
        assert log.violations > 0

    def test_adaptive_never_violates_with_true_model(self, system):
        log = run_mission(system, "adaptive", mission_years=10.0)
        assert log.violations == 0

    def test_adaptive_outworks_worst_case(self, system):
        logs = compare_strategies(system, mission_years=10.0)
        assert logs["adaptive"].work > logs["static_worst_case"].work
        assert logs["adaptive"].violations == 0

    def test_adaptive_frequency_declines_over_mission(self, system):
        log = run_mission(system, "adaptive", mission_years=10.0)
        assert log.frequencies[0] > log.frequencies[-1]

    def test_unknown_strategy_rejected(self, system):
        with pytest.raises(ValueError):
            run_mission(system, "yolo")

    def test_optimistic_predictor_causes_violations(self, system):
        # An aging predictor that underestimates dVth breaks timing —
        # prediction quality is load-bearing in the cross-layer loop.
        log = run_mission(
            system,
            "adaptive",
            mission_years=10.0,
            aging_predictor=lambda t: 0.5 * system.delta_vth_at(t),
        )
        assert log.violations > 0

    def test_hdc_mimic_predictor_works(self, system):
        """The confidentiality scenario: drive the loop with the HDC mimic."""
        from repro.hdc import HDCAgingModel

        rng = np.random.default_rng(0)
        times = rng.uniform(0.05, 10.0, 220) * 3.154e7
        # Waveform length encodes the stress time for this 1-D mimic; the
        # label is the physics-model shift with a safety factor.
        waves = [np.full(16, t / (10 * 3.154e7) * 0.8) for t in times]
        labels = [1.15 * system.delta_vth_at(t) for t in times]
        mimic = HDCAgingModel(dim=2048, n_buckets=24, seed=0).fit(waves, labels)

        def predictor(t_seconds):
            wave = np.full(16, t_seconds / (10 * 3.154e7) * 0.8)
            return float(mimic.predict([wave])[0])

        log = run_mission(
            system, "adaptive", mission_years=10.0, aging_predictor=predictor
        )
        # The margined mimic must keep violations rare while beating the
        # worst-case static clock on useful work.
        worst = run_mission(system, "static_worst_case", mission_years=10.0)
        assert log.violations <= 6
        assert log.work > 0.9 * worst.work
