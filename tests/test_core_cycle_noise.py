"""Tests for workloads, budget policies, runs, and the Monte Carlo study."""

import numpy as np
import pytest

from repro.core import (
    ALL_POLICIES,
    DS,
    DS_1_5X,
    DS_2X,
    WCET,
    CheckpointSystem,
    MonteCarloStudy,
    SegmentedWorkload,
    adpcm_like_workload,
    simulate_run,
)
from repro.core.workload import SEGMENT_MAX_CYCLES, SEGMENT_MIN_CYCLES


class TestWorkload:
    def test_segment_range_matches_paper(self):
        wl = adpcm_like_workload(n_segments=40, seed=0)
        assert min(wl) >= SEGMENT_MIN_CYCLES
        assert max(wl) <= SEGMENT_MAX_CYCLES

    def test_deadline_exceeds_clean_time(self):
        wl = adpcm_like_workload(seed=1)
        assert wl.deadline() > wl.clean_cycles()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SegmentedWorkload("w", [])

    def test_nonpositive_segments_rejected(self):
        with pytest.raises(ValueError):
            SegmentedWorkload("w", [1000, 0])


class TestBudgetPolicies:
    def test_budgets_ordering(self):
        seg, cp, rb = 100_000, 100, 48
        budgets = [p.budget_cycles(seg, cp, rb) for p in (DS, DS_1_5X, DS_2X, WCET)]
        assert budgets == sorted(budgets)

    def test_ds_budget_is_clean_cycles(self):
        assert DS.budget_cycles(50_000, 100, 48) == 50_100

    def test_wcet_covers_static_allowance(self):
        b = WCET.budget_cycles(50_000, 100, 48)
        assert b == 50_100 + 3 * (48 + 50_000 + 100)


class TestSimulateRun:
    def test_error_free_always_meets_deadline(self):
        wl = adpcm_like_workload(seed=0)
        cp = CheckpointSystem(0.0)
        rng = np.random.default_rng(0)
        for policy in ALL_POLICIES:
            run = simulate_run(wl, cp, policy, rng)
            assert run.deadline_met, policy.name
            assert run.rollbacks_per_segment == 0.0

    def test_conservative_policies_run_faster(self):
        wl = adpcm_like_workload(seed=0)
        cp = CheckpointSystem(0.0)
        rng = np.random.default_rng(0)
        speeds = {
            p.name: simulate_run(wl, cp, p, rng).mean_speed for p in ALL_POLICIES
        }
        assert speeds["DS"] < speeds["DS 1.5x"] < speeds["DS 2x"] <= speeds["WCET"]

    def test_conservative_policies_cost_energy(self):
        wl = adpcm_like_workload(seed=0)
        cp = CheckpointSystem(0.0)
        rng = np.random.default_rng(0)
        e_ds = simulate_run(wl, cp, DS, rng).energy
        e_wcet = simulate_run(wl, cp, WCET, rng).energy
        assert e_wcet > e_ds

    def test_past_wall_even_wcet_misses(self):
        wl = adpcm_like_workload(seed=0)
        cp = CheckpointSystem(1e-4)
        rng = np.random.default_rng(0)
        run = simulate_run(wl, cp, WCET, rng)
        assert not run.deadline_met


class TestMonteCarloStudy:
    @pytest.fixture(scope="class")
    def points(self):
        wl = adpcm_like_workload(n_segments=12, seed=0)
        study = MonteCarloStudy(wl, n_runs=60, seed=0)
        return study.sweep([1e-8, 1e-7, 1e-6, 3e-6, 1e-5, 1e-4]), study

    def test_fig5_shape(self, points):
        pts, study = points
        rollbacks = [p.mean_rollbacks_per_segment for p in pts]
        # Flat near zero below 1e-6, rising steeply after.
        assert rollbacks[0] < 0.05
        assert rollbacks[2] < 1.0
        assert rollbacks[-1] > 10.0
        assert all(a <= b + 0.2 for a, b in zip(rollbacks[:-1], rollbacks[1:]))

    def test_fig6_wall_window(self, points):
        pts, study = points
        for policy in ALL_POLICIES:
            rates = [p.hit_rate[policy.name] for p in pts]
            assert rates[0] > 0.95  # safe region
            assert rates[-1] < 0.05  # beyond the wall

    def test_fig6_conservative_ordering_in_window(self, points):
        pts, _ = points
        # Inside the 1e-6..1e-5 window, more conservative policies win.
        window = [p for p in pts if 1e-6 <= p.error_probability <= 1e-5]
        assert window
        for pt in window:
            hr = pt.hit_rate
            assert hr["WCET"] >= hr["DS 2x"] - 0.05
            assert hr["DS 2x"] >= hr["DS 1.5x"] - 0.05
            assert hr["DS 1.5x"] >= hr["DS"] - 0.05

    def test_wall_location(self, points):
        pts, study = points
        wall = study.find_wall(pts, "WCET")
        assert 1e-7 <= wall.last_safe_p <= 1e-5
        assert wall.first_failed_p <= 1e-4

    def test_analytic_matches_simulated_rollbacks(self, points):
        pts, study = points
        probs = [p.error_probability for p in pts[:4]]  # below-wall region
        analytic = study.analytic_rollbacks(probs)
        simulated = [p.mean_rollbacks_per_segment for p in pts[:4]]
        for a, s in zip(analytic, simulated):
            assert s == pytest.approx(a, abs=max(0.15, 0.5 * a))

    def test_energy_ordering_below_wall(self, points):
        pts, _ = points
        safe = pts[0]
        assert safe.mean_energy["WCET"] > safe.mean_energy["DS"]

    def test_analytic_rollbacks_uses_configured_costs(self):
        """Regression: analytic_rollbacks once rebuilt CheckpointSystem with
        *default* costs, silently ignoring the study's configuration."""
        wl = adpcm_like_workload(n_segments=6, seed=0)
        probs = [1e-6, 1e-5]
        study = MonteCarloStudy(
            wl,
            n_runs=2,
            checkpoint_cycles=5_000,
            rollback_cycles=2_000,
            include_routine_errors=True,
        )
        got = study.analytic_rollbacks(probs)
        expected = []
        for p in probs:
            cp = CheckpointSystem(
                p,
                checkpoint_cycles=5_000,
                rollback_cycles=2_000,
                include_routine_errors=True,
            )
            expected.append(
                float(np.mean([cp.expected_segment_rollbacks(c) for c in wl]))
            )
        assert np.array_equal(got, np.asarray(expected))
        # The configured system exposes more cycles per attempt, so its
        # analytic curve must sit strictly above the default-cost curve
        # the old code produced.
        default_curve = MonteCarloStudy(wl, n_runs=2).analytic_rollbacks(probs)
        assert (got > default_curve).all()

    def test_wall_location_stable_across_workloads(self):
        """The error-rate wall is a property of the segment-size scale,
        not of one particular workload draw."""
        from repro.core import WCET

        walls = []
        for seed in (1, 2, 3):
            wl = adpcm_like_workload(n_segments=10, seed=seed)
            study = MonteCarloStudy(wl, n_runs=40, seed=0)
            pts = study.sweep([1e-7, 1e-6, 3e-6, 1e-5, 1e-4])
            walls.append(study.find_wall(pts, WCET.name).first_failed_p)
        # Every draw collapses somewhere in the same decade band.
        assert all(1e-6 <= w <= 1e-4 for w in walls)


class TestFrameworkLoop:
    def test_loop_learns_simple_control(self):
        from repro.core import ReliabilityManagementLoop
        from repro.system.rl import QLearningAgent

        # Toy system: state is "hot" or "cool"; action 0 cools, action 1
        # heats but earns work; reward penalizes heat.
        class ToySystem:
            def __init__(self):
                self.temp = 0
                self.last_action = 0

        def observe(sys):
            return (1 if sys.temp > 3 else 0,)

        def apply_action(sys, action):
            sys.last_action = action

        def step(sys):
            sys.temp += 1 if sys.last_action == 1 else -1
            sys.temp = max(0, min(6, sys.temp))

        def reward(sys):
            return (1.0 if sys.last_action == 1 else 0.0) - (2.0 if sys.temp > 3 else 0.0)

        agent = QLearningAgent(n_actions=2, seed=0, epsilon=0.4)
        loop = ReliabilityManagementLoop(agent, observe, apply_action, reward, step)
        system = ToySystem()
        histories = [loop.run_episode(system, n_epochs=20, learn=True) for _ in range(30)]
        # Learned policy: keep working while cool (the unambiguous state).
        assert agent.act((0,), explore=False) == 1
        # And learning improved the episode reward over time.
        assert np.mean([h.total_reward for h in histories[-5:]]) >= np.mean(
            [h.total_reward for h in histories[:5]]
        )

    def test_loop_history(self):
        from repro.core import ReliabilityManagementLoop
        from repro.system.rl import QLearningAgent

        agent = QLearningAgent(n_actions=1, seed=0)
        loop = ReliabilityManagementLoop(
            agent,
            observe=lambda s: (0,),
            apply_action=lambda s, a: None,
            reward=lambda s: 1.0,
            step_system=lambda s: None,
        )
        history = loop.run_episode(object(), n_epochs=5)
        assert history.total_reward == 5.0
        assert len(history.actions) == 5

    def test_loop_validates_epochs(self):
        from repro.core import ReliabilityManagementLoop
        from repro.system.rl import QLearningAgent

        loop = ReliabilityManagementLoop(
            QLearningAgent(n_actions=1),
            observe=lambda s: (0,),
            apply_action=lambda s, a: None,
            reward=lambda s: 0.0,
            step_system=lambda s: None,
        )
        with pytest.raises(ValueError):
            loop.run_episode(object(), n_epochs=0)
