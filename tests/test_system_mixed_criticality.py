"""Tests for the mixed-criticality extension (Sec. VI-B, ref [38])."""

import numpy as np
import pytest

from repro.system.mixed_criticality import (
    LearnedController,
    MCTask,
    MCWorkload,
    OptimisticController,
    PessimisticController,
    _admit_by_value,
    generate_lo_tasks,
    run_mc_simulation,
)


class TestMCWorkload:
    def test_demand_bounded(self):
        wl = MCWorkload(seed=0)
        demands = [wl.step() for _ in range(500)]
        assert min(demands) >= 0.0
        assert max(demands) <= 1.0

    def test_spikes_reach_conservative_zone(self):
        wl = MCWorkload(seed=1, spike_rate=0.2)
        demands = [wl.step() for _ in range(800)]
        assert max(demands) > 0.7 * wl.hi_conservative

    def test_calm_epochs_near_optimistic(self):
        wl = MCWorkload(seed=2, spike_rate=0.0)
        demands = [wl.step() for _ in range(100)]
        assert np.median(demands) == pytest.approx(wl.hi_optimistic, abs=0.05)

    def test_observation_correlates_with_demand(self):
        wl = MCWorkload(seed=3, spike_rate=0.15)
        obs = []
        demands = []
        for _ in range(600):
            obs.append(wl.observe()[0])
            demands.append(wl.step())
        corr = np.corrcoef(obs, demands)[0, 1]
        assert corr > 0.4

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            MCWorkload(hi_optimistic=0.9, hi_conservative=0.5)


class TestAdmission:
    def test_greedy_respects_capacity(self):
        tasks = [MCTask("a", 0.3, 1.0), MCTask("b", 0.3, 2.0), MCTask("c", 0.3, 3.0)]
        admitted = _admit_by_value(tasks, free_capacity=0.65)
        assert sum(t.demand for t in admitted) <= 0.65
        assert {t.name for t in admitted} == {"b", "c"}

    def test_no_capacity_no_admission(self):
        tasks = [MCTask("a", 0.1, 1.0)]
        assert _admit_by_value(tasks, free_capacity=-0.5) == []

    def test_value_density_ordering(self):
        cheap_valuable = MCTask("cv", 0.1, 1.0)
        bulky_valuable = MCTask("bv", 0.5, 2.0)
        admitted = _admit_by_value([cheap_valuable, bulky_valuable], 0.15)
        assert admitted == [cheap_valuable]


class TestControllers:
    @pytest.fixture(scope="class")
    def learned(self):
        return LearnedController(seed=0).train(lambda: MCWorkload(seed=42))

    @pytest.fixture(scope="class")
    def lo_tasks(self):
        return generate_lo_tasks(6, seed=0)

    def _run(self, controller, lo_tasks, seed=7, n_epochs=600):
        return run_mc_simulation(controller, MCWorkload(seed=seed), lo_tasks, n_epochs)

    def test_all_controllers_protect_hi(self, learned, lo_tasks):
        for ctrl in (
            PessimisticController(MCWorkload()),
            OptimisticController(MCWorkload()),
            learned,
        ):
            metrics = self._run(ctrl, lo_tasks)
            assert metrics.hi_miss_rate < 0.01, ctrl.name

    def test_learned_beats_pessimistic_qos(self, learned, lo_tasks):
        p = self._run(PessimisticController(MCWorkload()), lo_tasks)
        l = self._run(learned, lo_tasks)
        assert l.qos > 1.3 * p.qos

    def test_learned_beats_optimistic_qos(self, learned, lo_tasks):
        o = self._run(OptimisticController(MCWorkload()), lo_tasks)
        l = self._run(learned, lo_tasks)
        assert l.qos > o.qos
        assert l.mode_switches < o.mode_switches

    def test_prediction_tracks_spikes(self, learned):
        wl = MCWorkload(seed=9, spike_rate=0.15)
        errors = []
        for _ in range(300):
            obs = wl.observe()
            pred = learned.predict_hi_demand(obs)
            actual = wl.step()
            errors.append(pred - actual)
        # The safety quantile makes predictions err on the high side.
        assert np.mean(np.asarray(errors) >= 0) > 0.8

    def test_untrained_controller_raises(self):
        with pytest.raises(RuntimeError):
            LearnedController().predict_hi_demand(np.zeros(3))

    def test_recovery_penalty_costs_qos(self, learned, lo_tasks):
        fast = run_mc_simulation(
            OptimisticController(MCWorkload()), MCWorkload(seed=5), lo_tasks,
            n_epochs=500, switch_recovery_epochs=0,
        )
        slow = run_mc_simulation(
            OptimisticController(MCWorkload()), MCWorkload(seed=5), lo_tasks,
            n_epochs=500, switch_recovery_epochs=6,
        )
        assert slow.qos < fast.qos
