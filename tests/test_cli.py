"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.runs == 100
        assert args.instances == 300

    def test_overrides(self):
        args = build_parser().parse_args(["fig6", "--runs", "10"])
        assert args.runs == 10


class TestMain:
    def test_list_enumerates_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "1e-08" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "WCET" in out

    def test_wall_runs(self, capsys):
        assert main(["wall", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "error-rate wall" in out

    def test_hdc_runs(self, capsys):
        assert main(["hdc"]) == 0
        out = capsys.readouterr().out
        assert "HDC accuracy" in out

    def test_multiple_experiments_in_sequence(self, capsys):
        assert main(["fig5", "fig6", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "Fig. 6" in out

    def test_fig2_runs_small(self, capsys):
        assert main(["fig2", "--instances", "80"]) == 0
        out = capsys.readouterr().out
        assert "SHE dT" in out
