"""Tests for the ``python -m repro`` experiment CLI."""

import re

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def _table_lines(out):
    """Rendered table rows only (drops timing-dependent runtime lines)."""
    return [l for l in out.splitlines() if l and not l.startswith("runtime:")]


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.runs == 100
        assert args.instances == 300

    def test_overrides(self):
        args = build_parser().parse_args(["fig6", "--runs", "10"])
        assert args.runs == 10

    def test_runtime_flag_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None
        assert args.progress is False
        assert args.trials == 500

    def test_runtime_flag_overrides(self):
        args = build_parser().parse_args(
            ["fi", "--jobs", "4", "--no-cache", "--trials", "200",
             "--cache-dir", "/tmp/somewhere", "--progress"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.trials == 200
        assert args.cache_dir == "/tmp/somewhere"
        assert args.progress is True

    def test_reference_kernel_flag(self):
        assert build_parser().parse_args(["fig5"]).reference_kernel is False
        args = build_parser().parse_args(["fig6", "--reference-kernel"])
        assert args.reference_kernel is True


class TestMain:
    def test_list_enumerates_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_list_shows_one_line_descriptions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Each experiment line carries its runner's docstring summary.
        assert "Fig. 5: rollbacks per segment vs error probability." in out
        assert "fault-injection campaign with outcome taxonomy" in out
        assert "report" in out  # the run-record renderer is advertised too

    def test_list_survives_missing_docstring(self, capsys, monkeypatch):
        def undocumented(args):
            pass

        monkeypatch.setitem(EXPERIMENTS, "nodoc", undocumented)
        assert main(["list"]) == 0
        assert "(no description)" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "1e-08" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "WCET" in out

    def test_wall_runs(self, capsys):
        assert main(["wall", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "error-rate wall" in out

    def test_list_advertises_reference_kernel(self, capsys):
        assert main(["list"]) == 0
        assert "--reference-kernel" in capsys.readouterr().out

    def test_fig5_reference_kernel_runs(self, capsys):
        # The Fig. 5 statistic is draw-for-draw identical across kernels,
        # so the rendered table must not change under --reference-kernel.
        assert main(["fig5", "--runs", "10", "--no-cache"]) == 0
        batched = capsys.readouterr().out
        assert main(
            ["fig5", "--runs", "10", "--no-cache", "--reference-kernel"]
        ) == 0
        scalar = capsys.readouterr().out
        assert "Fig. 5" in scalar
        assert _table_lines(batched) == _table_lines(scalar)

    def test_fig6_reference_kernel_runs(self, capsys):
        assert main(
            ["fig6", "--runs", "5", "--no-cache", "--reference-kernel"]
        ) == 0
        assert "WCET" in capsys.readouterr().out

    def test_hdc_runs(self, capsys):
        assert main(["hdc"]) == 0
        out = capsys.readouterr().out
        assert "HDC accuracy" in out

    def test_multiple_experiments_in_sequence(self, capsys):
        assert main(["fig5", "fig6", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "Fig. 6" in out

    def test_fig2_runs_small(self, capsys):
        assert main(["fig2", "--instances", "80"]) == 0
        out = capsys.readouterr().out
        assert "SHE dT" in out

    def test_fig5_parallel_matches_serial(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig5", "--runs", "10", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig5", "--runs", "10", "--jobs", "2", "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        # Identical tables; only the runtime accounting line may differ.
        strip = lambda out: [l for l in out.splitlines() if not l.startswith("runtime:")]
        assert strip(serial) == strip(parallel)

    def test_fig5_cache_rerun_executes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig5", "--runs", "10"]) == 0
        first = capsys.readouterr().out
        assert "7 levels executed, 0 cached" in first
        assert main(["fig5", "--runs", "10"]) == 0
        second = capsys.readouterr().out
        assert "0 levels executed, 7 cached" in second

    def test_fi_campaign_with_runtime_flags(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fi", "--trials", "100", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "100-trial campaign" in out
        assert "masked" in out
        assert "100 trials executed" in out

    def test_progress_flag_streams_to_stderr(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fi", "--trials", "64", "--no-cache", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[64/64]" in err
        assert "trials/s" in err

    def test_fi_steer_prints_summary_and_saves_trials(self, capsys, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fi", "--trials", "1024", "--steer", "--no-cache"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"steering: AVF [0-9.]+ \u00b1 [0-9.]+", out)
        assert match, out
        assert "stopped on target" in out
        assert re.search(r"\(\d+ saved\)", out)

    def test_fi_steer_flags_validate(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fi", "--steer", "--target-ci", "0.7"])
        args = build_parser().parse_args(
            ["fi", "--steer", "--target-ci", "0.05", "--no-early-stop"]
        )
        assert args.steer and args.target_ci == 0.05 and args.no_early_stop

    def test_list_advertises_steering(self, capsys):
        assert main(["list"]) == 0
        assert "--steer" in capsys.readouterr().out

    def test_fi_steer_recorded_run_resolves_steering(self, capsys, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runs = tmp_path / "runs"
        assert main(["fi", "--trials", "1024", "--steer", "--no-cache",
                     "--record", str(runs)]) == 0
        capsys.readouterr()
        from repro.obs import load_run_record

        record = load_run_record(runs)
        config = record["meta"]["config"]
        assert config["steer"] is True
        assert config["target_ci"] == 0.02
        steering = config["resolved"]["steering"]
        assert steering["trials_executed"] + steering["trials_saved"] == 1024
        counters = record["metrics"]["counters"]
        assert (counters["arch.fi.steering.trials_saved"]
                == steering["trials_saved"])

    def test_progress_on_fully_cached_rerun_prints_no_rate(self, capsys, tmp_path,
                                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fi", "--trials", "64"]) == 0
        capsys.readouterr()
        assert main(["fi", "--trials", "64", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "all from cache" in err
        assert "trials/s" not in err


class TestWorkerCLI:
    """``repro worker`` argument validation (both queue-dir and tcp modes)."""

    def test_needs_exactly_one_mode(self, capsys):
        from repro.cli import run_worker

        assert run_worker([]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert run_worker(["/tmp/q", "--connect", "h:1"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_once_rejected_for_tcp_workers(self, capsys):
        from repro.cli import run_worker

        assert run_worker(["--connect", "h:1", "--once"]) == 2
        assert "--once applies only" in capsys.readouterr().err

    def test_malformed_connect_address_is_a_clean_error(self, capsys):
        from repro.cli import run_worker

        assert run_worker(["--connect", "nohost"]) == 2
        assert "not HOST:PORT" in capsys.readouterr().err
        assert run_worker(["--connect", "h:notaport"]) == 2
        assert "non-numeric port" in capsys.readouterr().err

    def test_malformed_listen_address_is_a_clean_error(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with pytest.raises(SystemExit, match="--listen.*non-numeric port"):
            main(["fi", "--trials", "8", "--no-cache",
                  "--transport", "tcp", "--listen", "127.0.0.1:bad"])


class TestReportAndWatchCLI:
    """The flight-recorder surface: report --list/--diff/exports, watch."""

    def _record_runs(self, tmp_path, monkeypatch, capsys, n=1):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        runs = tmp_path / "runs"
        for i in range(n):
            assert main(["fi", "--trials", str(32 + 16 * i), "--no-cache",
                         "--record", str(runs)]) == 0
        capsys.readouterr()
        return runs

    def test_report_parser_flags(self):
        from repro.cli import build_report_parser

        args = build_report_parser().parse_args(
            ["runs", "--list", "--trace-out", "t.json", "--prom-out", "m.prom"]
        )
        assert args.paths == ["runs"]
        assert args.list_runs and not args.diff
        assert args.trace_out == "t.json"
        assert args.prom_out == "m.prom"

    def test_report_list_prints_one_line_per_run(self, capsys, tmp_path,
                                                 monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys, n=2)
        assert main(["report", str(runs), "--list"]) == 0
        out = capsys.readouterr().out
        assert f"runs under {runs}" in out
        assert "run id" in out and "experiment" in out
        body = [l for l in out.splitlines()
                if l.strip() and "==" not in l and "run id" not in l]
        assert len(body) == 2
        assert all(" fi " in l or l.rstrip().endswith("fi") or " ok " in l
                   for l in body)

    def test_report_list_rejects_multiple_paths(self, capsys, tmp_path):
        assert main(["report", str(tmp_path), str(tmp_path), "--list"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_report_base_dir_resolution_is_announced(self, capsys, tmp_path,
                                                     monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys)
        assert main(["report", str(runs)]) == 0
        captured = capsys.readouterr()
        assert "resolved newest run record under" in captured.err
        assert "use --list to see all runs" in captured.err
        assert "== run record:" in captured.out

    def test_report_run_dir_needs_no_notice(self, capsys, tmp_path,
                                            monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys)
        (run_dir,) = runs.iterdir()
        assert main(["report", str(run_dir)]) == 0
        assert "resolved newest" not in capsys.readouterr().err

    def test_report_diff_renders_all_sections(self, capsys, tmp_path,
                                              monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys, n=2)
        a, b = sorted(str(p) for p in runs.iterdir())
        assert main(["report", "--diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "== run diff:" in out
        assert "== outcome deltas ==" in out
        assert "chi-square" in out
        assert "== config diff ==" in out
        assert "trials" in out  # 32 vs 48 shows up in the config diff

    def test_report_diff_requires_two_paths(self, capsys, tmp_path,
                                            monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys)
        assert main(["report", "--diff", str(runs)]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_report_exports_trace_and_prom(self, capsys, tmp_path,
                                           monkeypatch):
        import json

        runs = self._record_runs(tmp_path, monkeypatch, capsys)
        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        assert main(["report", str(runs), "--trace-out", str(trace),
                     "--prom-out", str(prom)]) == 0
        out = capsys.readouterr().out
        assert f"chrome trace: {trace}" in out
        assert f"prometheus metrics: {prom}" in out
        document = json.loads(trace.read_text())
        assert document["traceEvents"]
        # The recorded run has an events.jsonl, so instants ride along.
        assert any(e["ph"] == "i" for e in document["traceEvents"])
        text = prom.read_text()
        assert "repro_run_info" in text
        assert "_total" in text

    def test_watch_once_summarizes_finished_run(self, capsys, tmp_path,
                                                monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys)
        (run_dir,) = runs.iterdir()
        assert main(["watch", str(run_dir), "--once"]) == 0
        err = capsys.readouterr().err  # status goes to stderr, like progress
        assert "[32/32]" in err
        assert "run finished" in err

    def test_watch_once_missing_events_exits_2(self, capsys, tmp_path):
        assert main(["watch", str(tmp_path), "--once"]) == 2
        assert "no events.jsonl" in capsys.readouterr().err

    def test_watch_accepts_events_file_path(self, capsys, tmp_path,
                                            monkeypatch):
        runs = self._record_runs(tmp_path, monkeypatch, capsys)
        (run_dir,) = runs.iterdir()
        assert main(["watch", str(run_dir / "events.jsonl"), "--once"]) == 0
        assert "trials/s" in capsys.readouterr().err

    def test_list_advertises_report_and_watch(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "report" in out and "diff" in out
        assert "watch" in out
