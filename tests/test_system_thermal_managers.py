"""Tests for the thermal managers: migration and RL-thermal."""

import numpy as np
import pytest

from repro.system import (
    Core,
    MigrationThermalManager,
    Platform,
    RLThermalManager,
    StaticManager,
    first_fit_partition,
    generate_task_set,
    run_managed_simulation,
)


def _hot_platform(seed=0):
    tasks = generate_task_set(n_tasks=10, total_utilization=2.4, seed=2)
    cores = [Core(i) for i in range(4)]
    return Platform(cores, tasks, first_fit_partition(tasks, cores), seed=seed)


class TestMigrationThermalManager:
    def test_no_migration_below_threshold(self):
        platform = _hot_platform()
        before = dict(platform.assignment)
        manager = MigrationThermalManager(gradient_threshold_k=50.0)
        manager.control(platform)  # temperatures all at ambient initially
        assert platform.assignment == before

    def test_migrates_off_hot_core(self):
        platform = _hot_platform()
        # Create an artificial gradient.
        platform.thermal.temperatures[0] = 70.0
        platform.thermal.temperatures[1:] = 45.0
        before = dict(platform.assignment)
        hot_tasks_before = [n for n, c in before.items() if c == 0]
        if not hot_tasks_before:
            pytest.skip("partition left core 0 empty")
        MigrationThermalManager(gradient_threshold_k=2.0).control(platform)
        hot_tasks_after = [n for n, c in platform.assignment.items() if c == 0]
        assert len(hot_tasks_after) <= len(hot_tasks_before)

    def test_migration_respects_feasibility(self):
        platform = _hot_platform()
        platform.thermal.temperatures[0] = 70.0
        platform.thermal.temperatures[1:] = 45.0
        MigrationThermalManager(gradient_threshold_k=2.0).control(platform)
        from repro.system.scheduler import load_per_core

        loads = load_per_core(platform.task_set, platform.cores, platform.assignment)
        assert all(u <= 1.0 + 1e-9 for u in loads)

    def test_reduces_gradient_over_mission(self):
        tasks = generate_task_set(n_tasks=10, total_utilization=2.4, seed=2)

        def run(manager):
            cores = [Core(i) for i in range(4)]
            platform = Platform(
                cores, tasks, first_fit_partition(tasks, cores), seed=0
            )
            platform.run(8.0, manager=manager)
            return platform.thermal.max_spatial_gradient()

        static = run(StaticManager())
        migrated = run(MigrationThermalManager(gradient_threshold_k=2.0))
        assert migrated <= static + 0.1


class TestRLThermalManager:
    def test_thermal_weighted_reward(self):
        manager = RLThermalManager(t_limit_c=60.0, seed=0)
        assert manager.w_temp > manager.w_energy
        assert manager.w_miss > manager.w_soft

    def test_improves_mttf_over_static(self):
        tasks = generate_task_set(n_tasks=10, total_utilization=2.4, seed=2)
        static = run_managed_simulation(
            StaticManager(), tasks, n_cores=4, duration=12.0, seed=0
        )
        rl = run_managed_simulation(
            RLThermalManager(t_limit_c=58.0, seed=0), tasks, n_cores=4,
            duration=12.0, seed=0, training_episodes=5,
        )
        assert rl.mttf_years >= static.mttf_years * 0.9
        assert rl.peak_temperature_c <= static.peak_temperature_c + 0.5
        assert rl.deadline_hit_rate > 0.9


class TestMonteCarloDeterminism:
    def test_same_seed_same_results_same_process(self):
        from repro.core import MonteCarloStudy, adpcm_like_workload

        wl = adpcm_like_workload(n_segments=8, seed=0)
        a = MonteCarloStudy(wl, n_runs=30, seed=5).run_level(3e-6)
        b = MonteCarloStudy(wl, n_runs=30, seed=5).run_level(3e-6)
        assert a.hit_rate == b.hit_rate
        assert a.mean_rollbacks_per_segment == b.mean_rollbacks_per_segment
