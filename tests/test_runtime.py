"""Tests for the parallel campaign runtime (repro.runtime)."""

import numpy as np
import pytest

from repro.runtime import (
    MISS,
    CampaignRunner,
    ProgressLog,
    ResultCache,
    TrialChunk,
    chunk_bounds,
    spawn_trial_seeds,
    stable_digest,
    trial_rng,
    trial_seed_sequence,
)


def _draw_chunk(chunk):
    """Toy chunk worker: one uniform draw per trial (module-level: picklable)."""
    return [float(rng.random()) for rng in chunk.rngs()]


def _square(x):
    return x * x


class TestSeeding:
    def test_matches_seedsequence_spawn(self):
        # The contract: trial i's stream IS the i-th spawned child.
        children = np.random.SeedSequence(42).spawn(8)
        for i, child in enumerate(children):
            ours = trial_seed_sequence(42, i)
            assert np.array_equal(
                ours.generate_state(4), child.generate_state(4)
            )

    def test_streams_independent_of_campaign_size(self):
        assert trial_rng(7, 5).random() == trial_rng(7, 5).random()
        seeds_small = spawn_trial_seeds(7, 6)
        seeds_large = spawn_trial_seeds(7, 20)
        assert np.array_equal(
            seeds_small[5].generate_state(2), seeds_large[5].generate_state(2)
        )

    def test_distinct_trials_distinct_streams(self):
        draws = {trial_rng(0, i).random() for i in range(50)}
        assert len(draws) == 50

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            trial_seed_sequence(0, -1)


class TestChunking:
    def test_bounds_cover_range_exactly(self):
        bounds = chunk_bounds(100, 32)
        assert bounds == [(0, 32), (32, 64), (64, 96), (96, 100)]

    def test_empty_campaign(self):
        assert chunk_bounds(0) == []

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1)
        with pytest.raises(ValueError):
            chunk_bounds(10, 0)

    def test_chunk_streams_match_direct_streams(self):
        chunk = TrialChunk(seed=3, start=10, stop=14)
        assert len(chunk) == 4
        direct = [trial_rng(3, i).random() for i in range(10, 14)]
        assert [rng.random() for rng in chunk.rngs()] == direct


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = cache.key("ns", 1, [2, 3])
        assert cache.get(digest) is MISS
        cache.put(digest, {"answer": 42})
        assert cache.get(digest) == {"answer": 42}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_canonicalization(self):
        # Tuples and lists address the same entry; order matters.
        assert stable_digest((1, 2), "a") == stable_digest([1, 2], "a")
        assert stable_digest(1, 2) != stable_digest(2, 1)
        assert stable_digest({"b": 1, "a": 2}) == stable_digest({"a": 2, "b": 1})

    def test_uncanonicalizable_key_rejected(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = cache.key("x")
        (tmp_path / f"{digest}.pkl").write_bytes(b"not a pickle")
        assert cache.get(digest) is MISS

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(cache.key(i), i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


class TestCampaignRunner:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = CampaignRunner(jobs=1, chunk_size=7).run_trials(
            _draw_chunk, 100, seed=5
        )
        parallel = CampaignRunner(jobs=4, chunk_size=7).run_trials(
            _draw_chunk, 100, seed=5
        )
        assert serial == parallel
        assert len(serial) == 100

    def test_chunk_size_does_not_change_results(self):
        a = CampaignRunner(jobs=1, chunk_size=3).run_trials(_draw_chunk, 50, seed=1)
        b = CampaignRunner(jobs=2, chunk_size=17).run_trials(_draw_chunk, 50, seed=1)
        assert a == b

    def test_nonpicklable_worker_falls_back_to_serial(self):
        runner = CampaignRunner(jobs=4)
        offsets = iter(range(1000))  # closure over a generator: not picklable
        results = runner.run_trials(
            lambda chunk: [next(offsets) * 0 + i for i in chunk.indices], 64, seed=0
        )
        assert results == list(range(64))
        assert runner.stats.fallback_reason is not None
        assert runner.stats.jobs_used == 1

    def test_cache_rerun_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = CampaignRunner(jobs=2, cache=cache)
        a = first.run_trials(_draw_chunk, 80, seed=2, key=("toy",))
        assert first.stats.executed_trials == 80
        second = CampaignRunner(jobs=2, cache=cache)
        b = second.run_trials(_draw_chunk, 80, seed=2, key=("toy",))
        assert a == b
        assert second.stats.executed_trials == 0
        assert second.stats.cached_trials == 80

    def test_cache_respects_key_and_seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        CampaignRunner(cache=cache).run_trials(_draw_chunk, 32, seed=0, key=("a",))
        other_key = CampaignRunner(cache=cache)
        other_key.run_trials(_draw_chunk, 32, seed=0, key=("b",))
        assert other_key.stats.cached_trials == 0
        other_seed = CampaignRunner(cache=cache)
        other_seed.run_trials(_draw_chunk, 32, seed=1, key=("a",))
        assert other_seed.stats.cached_trials == 0

    def test_progress_and_histogram(self):
        log = ProgressLog()
        runner = CampaignRunner(
            jobs=1, chunk_size=10, progress=log,
            classify=lambda x: "hi" if x >= 0.5 else "lo",
        )
        runner.run_trials(_draw_chunk, 40, seed=0)
        assert log.last.done == 40
        assert log.last.total == 40
        assert sum(log.last.histogram.values()) == 40
        assert [e.done for e in log.events] == sorted(e.done for e in log.events)
        assert runner.stats.trials_per_sec > 0

    def test_map_preserves_order(self):
        runner = CampaignRunner(jobs=3)
        assert runner.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        CampaignRunner(cache=cache).map(_square, [1, 2, 3], key=("sq",))
        rerun = CampaignRunner(cache=cache)
        assert rerun.map(_square, [1, 2, 3], key=("sq",)) == [1, 4, 9]
        assert rerun.stats.units_cached == 3
        assert rerun.stats.units_executed == 0

    def test_map_item_keys_must_align(self):
        with pytest.raises(ValueError):
            CampaignRunner().map(_square, [1, 2], item_keys=[("only-one",)])

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=-2)
        assert CampaignRunner(jobs=0).jobs >= 1  # 0 = all CPUs


class TestFaultInjectionIntegration:
    """The acceptance contract: a >=500-trial campaign at jobs=4 matches
    jobs=1 bit-for-bit, and a cached re-run executes zero trials."""

    @pytest.fixture(scope="class")
    def injector(self):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        return FaultInjector(P.fibonacci(8))

    def test_parallel_campaign_identical_to_serial(self, injector):
        serial = injector.run_campaign(n_trials=500, seed=3, jobs=1)
        parallel = injector.run_campaign(n_trials=500, seed=3, jobs=4)
        assert serial.counts() == parallel.counts()
        assert serial.records == parallel.records

    def test_cached_rerun_executes_zero_trials(self, injector, tmp_path):
        cache = ResultCache(tmp_path)
        first = injector.run_campaign(n_trials=500, seed=3, jobs=4, cache=cache)
        assert injector.last_run_stats.executed_trials == 500
        again = injector.run_campaign(n_trials=500, seed=3, jobs=4, cache=cache)
        assert injector.last_run_stats.executed_trials == 0
        assert injector.last_run_stats.cached_trials == 500
        assert again.records == first.records

    def test_fingerprint_invalidates_across_programs(self, injector, tmp_path):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        cache = ResultCache(tmp_path)
        injector.run_campaign(n_trials=64, seed=0, cache=cache)
        other = FaultInjector(P.checksum(8))
        other.run_campaign(n_trials=64, seed=0, cache=cache)
        assert other.last_run_stats.cached_trials == 0

    def test_element_campaign_parallel_matches_serial(self, injector):
        serial = injector.exhaustive_element_campaign("reg3", n_trials=96, seed=1)
        parallel = injector.exhaustive_element_campaign(
            "reg3", n_trials=96, seed=1, jobs=2
        )
        assert serial.records == parallel.records

    def test_campaign_progress_histogram_matches_counts(self, injector):
        log = ProgressLog()
        campaign = injector.run_campaign(n_trials=128, seed=0, progress=log)
        assert log.last.done == 128
        assert log.last.histogram == {
            o.value: c for o, c in campaign.counts().items() if c
        }


class TestMonteCarloIntegration:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.core import MonteCarloStudy, adpcm_like_workload

        wl = adpcm_like_workload(n_segments=8, seed=0)
        return MonteCarloStudy(wl, n_runs=20, seed=0)

    PROBS = [1e-7, 1e-6, 1e-5]

    def test_parallel_sweep_identical_to_serial(self, study):
        serial = study.sweep(self.PROBS)
        parallel = study.sweep(self.PROBS, jobs=3)
        for a, b in zip(serial, parallel):
            assert a.error_probability == b.error_probability
            assert a.mean_rollbacks_per_segment == b.mean_rollbacks_per_segment
            assert a.hit_rate == b.hit_rate
            assert a.mean_energy == b.mean_energy

    def test_cached_sweep_reruns_nothing(self, study, tmp_path):
        cache = ResultCache(tmp_path)
        study.sweep(self.PROBS, jobs=2, cache=cache)
        assert study.last_sweep_stats.units_executed == len(self.PROBS)
        study.sweep(self.PROBS, cache=cache)
        assert study.last_sweep_stats.units_executed == 0
        assert study.last_sweep_stats.units_cached == len(self.PROBS)

    def test_new_levels_only_execute_new_points(self, study, tmp_path):
        cache = ResultCache(tmp_path)
        study.sweep([1e-7, 1e-6], cache=cache)
        study.sweep([1e-7, 1e-6, 1e-5], cache=cache)
        assert study.last_sweep_stats.units_cached == 2
        assert study.last_sweep_stats.units_executed == 1

    def test_stateful_policies_run_serial_uncached(self, tmp_path):
        from repro.core import (
            ALL_POLICIES,
            AdaptiveBudgetPolicy,
            MonteCarloStudy,
            adpcm_like_workload,
        )

        wl = adpcm_like_workload(n_segments=6, seed=0)
        study = MonteCarloStudy(
            wl, policies=ALL_POLICIES + (AdaptiveBudgetPolicy(),), n_runs=5, seed=0
        )
        cache = ResultCache(tmp_path)
        points = study.sweep([1e-6, 1e-5], jobs=4, cache=cache)
        assert len(points) == 2
        assert "Learned" in points[0].hit_rate
        assert study.last_sweep_stats.jobs_used == 1  # forced serial
        assert len(cache) == 0  # and uncached
