"""Tests for the Sec. V error model (Eqs. (1)-(2)) and checkpoint system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CHECKPOINT_CYCLES,
    ROLLBACK_CYCLES,
    CheckpointSystem,
    expected_rollbacks,
    prob_no_error,
    rollback_pmf,
    sample_rollbacks,
)


class TestEquationOne:
    def test_zero_probability(self):
        assert prob_no_error(0.0, 100_000) == 1.0

    def test_matches_closed_form(self):
        assert prob_no_error(1e-4, 1000) == pytest.approx((1 - 1e-4) ** 1000)

    def test_monotone_in_cycles(self):
        assert prob_no_error(1e-5, 10_000) > prob_no_error(1e-5, 100_000)

    def test_monotone_in_p(self):
        assert prob_no_error(1e-6, 50_000) > prob_no_error(1e-4, 50_000)

    def test_no_underflow_at_huge_counts(self):
        value = prob_no_error(1e-6, 10_000_000)
        assert 0.0 <= value < 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            prob_no_error(1.0, 10)
        with pytest.raises(ValueError):
            prob_no_error(-0.1, 10)


class TestEquationTwo:
    def test_pmf_sums_to_one(self):
        p, n_c = 1e-5, 50_000
        total = sum(rollback_pmf(p, n_c, k) for k in range(2000))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_zero_rollbacks_most_likely_below_wall(self):
        p, n_c = 1e-7, 100_000
        assert rollback_pmf(p, n_c, 0) > rollback_pmf(p, n_c, 1)

    def test_expected_value_matches_geometric_mean(self):
        p, n_c = 1e-5, 100_000
        q = prob_no_error(p, n_c)
        assert expected_rollbacks(p, n_c) == pytest.approx((1 - q) / q)

    def test_expected_rollbacks_explode_past_wall(self):
        # The Fig. 5 "error rate wall": tiny below 1e-6, >10 above 1e-5.
        assert expected_rollbacks(1e-7, 150_000) < 0.1
        assert expected_rollbacks(3e-5, 150_000) > 10.0

    def test_sampling_matches_expectation(self):
        rng = np.random.default_rng(0)
        p, n_c = 1e-5, 80_000
        samples = [sample_rollbacks(p, n_c, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(
            expected_rollbacks(p, n_c), rel=0.15
        )

    def test_sampling_cap(self):
        rng = np.random.default_rng(0)
        assert sample_rollbacks(0.5, 1_000_000, rng, cap=17) == 17


@given(
    st.floats(min_value=1e-9, max_value=1e-3),
    st.integers(min_value=1_000, max_value=500_000),
)
@settings(max_examples=50, deadline=None)
def test_eq1_eq2_consistency_property(p, n_c):
    q = prob_no_error(p, n_c)
    assert 0.0 < q <= 1.0
    assert rollback_pmf(p, n_c, 0) == pytest.approx(q)


class TestCheckpointSystem:
    def test_clean_cycles_include_checkpoint(self):
        cp = CheckpointSystem(0.0)
        assert cp.clean_segment_cycles(40_000) == 40_000 + CHECKPOINT_CYCLES

    def test_rollback_cost_accounting(self):
        cp = CheckpointSystem(0.0)
        seg = 100_000
        one = cp.segment_cycles_with_rollbacks(seg, 1)
        clean = cp.clean_segment_cycles(seg)
        assert one == clean + ROLLBACK_CYCLES + seg + CHECKPOINT_CYCLES

    def test_no_errors_no_rollbacks(self):
        cp = CheckpointSystem(0.0)
        rng = np.random.default_rng(0)
        n_rb, cycles = cp.sample_segment(100_000, rng)
        assert n_rb == 0
        assert cycles == cp.clean_segment_cycles(100_000)

    def test_overhead_factor_grows_with_p(self):
        seg = 150_000
        assert CheckpointSystem(1e-5).expected_overhead_factor(
            seg
        ) > CheckpointSystem(1e-7).expected_overhead_factor(seg)

    def test_negative_rollbacks_rejected(self):
        with pytest.raises(ValueError):
            CheckpointSystem(0.0).segment_cycles_with_rollbacks(1000, -1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            CheckpointSystem(1.5)


class TestCheckpointOptimization:
    def test_matches_brute_force(self):
        cp = CheckpointSystem(1e-6)
        total = 900_000
        n_opt = cp.optimal_segment_count(total)
        brute = min(
            range(1, 1500), key=lambda n: cp.expected_total_cycles(total, n)
        )
        assert n_opt == brute

    def test_optimum_scales_with_error_rate(self):
        # Young/Daly structure: the optimal checkpoint count grows ~sqrt(p).
        total = 1_800_000
        n_low = CheckpointSystem(1e-7).optimal_segment_count(total)
        n_mid = CheckpointSystem(1e-6).optimal_segment_count(total)
        n_high = CheckpointSystem(1e-5).optimal_segment_count(total)
        assert n_low < n_mid < n_high
        assert 2.0 < n_mid / n_low < 5.0  # ~sqrt(10) per decade

    def test_expected_total_cycles_unimodal_at_optimum(self):
        cp = CheckpointSystem(1e-5)
        total = 1_000_000
        n_opt = cp.optimal_segment_count(total)
        at = cp.expected_total_cycles(total, n_opt)
        assert at <= cp.expected_total_cycles(total, max(n_opt // 2, 1))
        assert at <= cp.expected_total_cycles(total, n_opt * 2)

    def test_optimization_reduces_overhead_vs_coarse(self):
        cp = CheckpointSystem(1e-5)
        total = 1_800_000
        coarse = cp.expected_total_cycles(total, 6)
        optimal = cp.expected_total_cycles(total, cp.optimal_segment_count(total))
        assert optimal < coarse

    def test_invalid_inputs(self):
        cp = CheckpointSystem(1e-6)
        with pytest.raises(ValueError):
            cp.expected_total_cycles(1000, 0)
        with pytest.raises(ValueError):
            cp.optimal_segment_count(0)
