"""Tests for scale prediction, pattern mining, SDC-GAT, and replication."""

import numpy as np
import pytest

from repro.arch import (
    FaultInjector,
    PatternMiner,
    ReplicationStudy,
    ScalePredictionStudy,
    SDCPredictor,
)
from repro.arch import programs as P
from repro.arch.scale_prediction import generate_applications
from repro.arch.sdc_prediction import build_instruction_graph, label_instructions


class TestScalePrediction:
    @pytest.fixture(scope="class")
    def study(self):
        return ScalePredictionStudy(n_train=400, n_test=250, seed=0)

    def test_dataset_shapes(self):
        X, y = generate_applications(50, seed=0)
        assert X.shape == (50, 20)
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_all_models_beat_chance(self, study):
        for result in study.compare_all():
            assert result.accuracy > 0.5, result

    def test_boosting_competitive(self, study):
        results = {r.model_name: r.accuracy for r in study.compare_all()}
        best_multiclass = max(
            v for k, v in results.items() if k != "svm"
        )
        assert results["adaboost"] >= best_multiclass - 0.05

    def test_unknown_model_rejected(self, study):
        with pytest.raises(KeyError):
            study.evaluate("deep_transformer")

    def test_reproducible_datasets(self):
        X1, y1 = generate_applications(30, seed=7)
        X2, y2 = generate_applications(30, seed=7)
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)


class TestPatternMining:
    @pytest.fixture(scope="class")
    def miner(self):
        campaigns = [
            FaultInjector(p).run_campaign(n_trials=250, seed=i)
            for i, p in enumerate([P.checksum(10), P.fibonacci(8)])
        ]
        return PatternMiner(campaigns, seed=0).fit_outcome_predictor(n_estimators=25)

    def test_record_count(self, miner):
        assert miner.n_records == 500

    def test_training_accuracy_beats_majority(self, miner):
        majority = max(np.bincount(miner.y)) / len(miner.y)
        assert miner.training_accuracy() > majority

    def test_predicts_new_campaign(self, miner):
        campaign = FaultInjector(P.vector_add(6)).run_campaign(n_trials=100, seed=9)
        pred = miner.predict_outcomes(campaign)
        assert len(pred) == 100

    def test_feature_importance_nonnegative_sum(self, miner):
        imp = miner.feature_importance(n_permutations=2)
        assert len(imp) == 7
        assert sum(imp.values()) > 0.0

    def test_failure_clusters(self, miner):
        summary = miner.cluster_summary(n_clusters=3)
        assert 1 <= len(summary) <= 3
        assert all(s["size"] > 0 for s in summary)

    def test_empty_campaign_list_rejected(self):
        with pytest.raises(ValueError):
            PatternMiner([])

    def test_predict_before_fit_raises(self):
        campaigns = [FaultInjector(P.fibonacci(6)).run_campaign(n_trials=20, seed=0)]
        miner = PatternMiner(campaigns)
        with pytest.raises(RuntimeError):
            miner.predict_outcomes(campaigns[0])


class TestSDCPrediction:
    def test_graph_structure(self):
        prog = P.dot_product(8)
        graph = build_instruction_graph(prog)
        assert graph.n_nodes == len(prog.instructions)
        assert len(graph.edges) > graph.n_nodes  # data + control + memory edges
        assert set(graph.edge_types) <= {0, 1, 2}

    def test_labels_cover_all_instructions(self):
        prog = P.fibonacci(8)
        labels = label_instructions(prog, n_trials_per_instruction=10, seed=0)
        assert len(labels) == len(prog.instructions)
        assert labels.min() >= 0 and labels.max() <= 3

    def test_inductive_prediction_beats_chance(self):
        train = [P.vector_add(8), P.dot_product(8), P.fibonacci(10)]
        test = P.checksum(12)
        predictor = SDCPredictor(
            hidden=12, n_epochs=150, lr=0.05, n_trials_per_instruction=15, seed=0
        ).fit(train)
        truth = label_instructions(test, n_trials_per_instruction=15, seed=5)
        acc = float(np.mean(predictor.predict(test) == truth))
        assert acc > 0.3  # 4-class chance is 0.25; inductive transfer helps

    def test_sdc_prone_listing(self):
        train = [P.vector_add(6), P.fibonacci(8)]
        predictor = SDCPredictor(
            hidden=8, n_epochs=60, n_trials_per_instruction=10, seed=0
        ).fit(train)
        prone = predictor.sdc_prone_instructions(P.dot_product(6), threshold=0.1)
        assert isinstance(prone, list)


class TestReplicationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return ReplicationStudy(
            [P.dot_product(8), P.checksum(10), P.vector_add(8)],
            n_trials_per_instruction=30,
            seed=0,
        )

    def test_full_replication_full_coverage(self, study):
        out = study.evaluate_full_replication(study.programs[0])
        assert out.coverage == 1.0

    def test_ipas_cheaper_than_heuristic(self, study):
        # Aggregated over the workload suite, the learned selection must be
        # strictly cheaper than the static backward-slice heuristic.
        ipas_total = sum(study.evaluate_ipas(p).slowdown for p in study.programs)
        heur_total = sum(study.evaluate_heuristic(p).slowdown for p in study.programs)
        assert ipas_total < heur_total

    def test_ipas_keeps_useful_coverage(self, study):
        p = study.programs[0]
        assert study.evaluate_ipas(p).coverage > 0.5

    def test_oracle_bounds_ipas_coverage_cost(self, study):
        p = study.programs[1]
        oracle = study.evaluate_oracle(p)
        full = study.evaluate_full_replication(p)
        assert oracle.slowdown <= full.slowdown + 1e-9

    def test_leave_one_out_generalizes(self, study):
        out = study.leave_one_out(study.programs[2])
        assert out.coverage > 0.3

    def test_single_program_loo_rejected(self):
        lone = ReplicationStudy([P.fibonacci(8)], n_trials_per_instruction=10, seed=0)
        with pytest.raises(ValueError):
            lone.leave_one_out(lone.programs[0])
