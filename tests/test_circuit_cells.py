"""Tests for standard cells, lookup tables, and libraries."""

import numpy as np
import pytest

from repro.circuit.cell import LookupTable, StandardCell, make_cell
from repro.circuit.library import Library, build_default_library
from repro.transistor import Transistor


class TestLookupTable:
    def _table(self):
        return LookupTable(
            slews=[10.0, 20.0], loads=[1.0, 2.0], values=[[1.0, 2.0], [3.0, 4.0]]
        )

    def test_exact_corner_lookup(self):
        t = self._table()
        assert t(10.0, 1.0) == 1.0
        assert t(20.0, 2.0) == 4.0

    def test_bilinear_midpoint(self):
        t = self._table()
        assert t(15.0, 1.5) == pytest.approx(2.5)

    def test_clamping_beyond_grid(self):
        t = self._table()
        assert t(1000.0, 1000.0) == 4.0
        assert t(0.0, 0.0) == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LookupTable([1.0, 2.0], [1.0], [[1.0, 2.0]])

    def test_non_monotone_axes_rejected(self):
        with pytest.raises(ValueError):
            LookupTable([2.0, 1.0], [1.0, 2.0], np.ones((2, 2)))

    def test_max_value(self):
        assert self._table().max_value() == 4.0


class TestMakeCell:
    def test_known_kinds(self):
        inv = make_cell("INV", 1)
        assert inv.name == "INV_X1"
        assert inv.inputs == ("A",)
        assert not inv.is_sequential

    def test_dff_is_sequential(self):
        dff = make_cell("DFF", 2)
        assert dff.is_sequential
        assert dff.output == "Q"

    def test_strength_scales_width_and_cap(self):
        x1 = make_cell("NAND2", 1)
        x4 = make_cell("NAND2", 4)
        assert x4.transistors[0].width_nm == 4 * x1.transistors[0].width_nm
        assert x4.input_cap_ff > x1.input_cap_ff

    def test_stack_depth_by_kind(self):
        assert make_cell("INV").stack_depth == 1
        assert make_cell("NAND3").stack_depth == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_cell("MUX4")

    def test_clone_uncharacterized_drops_arcs(self):
        cell = make_cell("INV")
        cell.arcs = ["sentinel"]
        clone = cell.clone_uncharacterized(name="INV_X1@u0")
        assert clone.arcs == []
        assert clone.name == "INV_X1@u0"
        assert cell.arcs == ["sentinel"]

    def test_cell_requires_transistors(self):
        with pytest.raises(ValueError):
            StandardCell(
                name="BAD", inputs=("A",), output="Y", transistors=[], input_cap_ff=1.0
            )


class TestLibrary:
    def test_default_library_has_59_cells(self):
        lib = build_default_library()
        assert len(lib) == 59

    def test_duplicate_rejected(self):
        lib = Library("t")
        lib.add(make_cell("INV"))
        with pytest.raises(ValueError):
            lib.add(make_cell("INV"))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            Library("t").get("NOPE")

    def test_combinational_vs_sequential_partition(self):
        lib = build_default_library()
        comb = lib.combinational_cells()
        seq = [c for c in lib if c.is_sequential]
        assert len(comb) + len(seq) == len(lib)
        assert len(seq) == 2

    def test_clone_empty_keeps_corner(self):
        lib = Library("corner", temperature_c=125.0, vdd=0.7, delta_vth=0.05)
        clone = lib.clone_empty("new")
        assert clone.temperature_c == 125.0
        assert clone.vdd == 0.7
        assert clone.delta_vth == 0.05
        assert len(clone) == 0

    def test_contains_and_names(self):
        lib = build_default_library()
        assert "INV_X1" in lib
        assert "INV_X1" in lib.cell_names()
