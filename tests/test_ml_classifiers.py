"""Tests for the classical classifiers: kNN, NB, SVM, trees, ensembles, MLP."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianNB,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LinearSVC,
    MLPClassifier,
    MLPRegressor,
    RandomForestClassifier,
    accuracy_score,
    r2_score,
)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 0.7, (60, 3)), rng.normal(3, 0.7, (60, 3))])
    y = np.repeat([0, 1], 60)
    return X, y


@pytest.fixture(scope="module")
def blobs3():
    rng = np.random.default_rng(1)
    X = np.vstack([rng.normal(c, 0.6, (40, 2)) for c in (0.0, 3.0, 6.0)])
    y = np.repeat([0, 1, 2], 40)
    return X, y


ALL_BINARY = [
    KNeighborsClassifier,
    GaussianNB,
    LinearSVC,
    DecisionTreeClassifier,
    RandomForestClassifier,
    AdaBoostClassifier,
    GradientBoostingClassifier,
    MLPClassifier,
]

MULTICLASS = [
    KNeighborsClassifier,
    GaussianNB,
    DecisionTreeClassifier,
    RandomForestClassifier,
    AdaBoostClassifier,
    GradientBoostingClassifier,
    MLPClassifier,
]


@pytest.mark.parametrize("model_cls", ALL_BINARY)
def test_binary_blobs_high_accuracy(model_cls, blobs):
    X, y = blobs
    model = model_cls().fit(X, y)
    assert accuracy_score(y, model.predict(X)) > 0.9


@pytest.mark.parametrize("model_cls", MULTICLASS)
def test_multiclass_blobs(model_cls, blobs3):
    X, y = blobs3
    model = model_cls().fit(X, y)
    assert accuracy_score(y, model.predict(X)) > 0.9


@pytest.mark.parametrize(
    "model_cls",
    [KNeighborsClassifier, GaussianNB, RandomForestClassifier, MLPClassifier,
     GradientBoostingClassifier],
)
def test_predict_proba_sums_to_one(model_cls, blobs):
    X, y = blobs
    model = model_cls().fit(X, y)
    probs = model.predict_proba(X[:10])
    assert probs.shape == (10, 2)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs >= 0)


class TestKNN:
    def test_k1_memorizes_training_set(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_k_larger_than_n_clamps(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 0, 1])
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        assert model.predict(np.array([[0.5]]))[0] == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_regressor_interpolates(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = 2.0 * np.arange(10.0)
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        pred = model.predict(np.array([[4.5]]))[0]
        assert pred == pytest.approx(9.0)


class TestGaussianNB:
    def test_priors_sum_to_one(self, blobs):
        X, y = blobs
        model = GaussianNB().fit(X, y)
        assert model.priors_.sum() == pytest.approx(1.0)

    def test_unbalanced_priors(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(0, 1, (90, 1)), rng.normal(5, 1, (10, 1))])
        y = np.array([0] * 90 + [1] * 10)
        model = GaussianNB().fit(X, y)
        assert model.priors_[0] == pytest.approx(0.9)


class TestSVM:
    def test_decision_function_sign_matches_predict(self, blobs):
        X, y = blobs
        model = LinearSVC().fit(X, y)
        scores = model.decision_function(X)
        preds = model.predict(X)
        assert np.all((scores >= 0) == (preds == model.classes_[1]))

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0)

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            LinearSVC().fit(np.ones((3, 1)), [0, 1, 2])


class TestDecisionTree:
    def test_xor_needs_depth(self):
        # XOR is not linearly separable; a depth-2 tree can solve it.
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=float)
        y = np.array([0, 1, 1, 0] * 10)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_depth_one_is_a_stump(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(int)
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        # Threshold candidates are quantile-capped, so the split may land a
        # sample off the exact boundary; near-perfect is the contract.
        assert accuracy_score(y, model.predict(X)) >= 0.95
        root = model._root
        assert root.left.is_leaf and root.right.is_leaf

    def test_sample_weights_shift_majority(self):
        X = np.zeros((4, 1))
        y = np.array([0, 0, 1, 1])
        w_heavy_one = np.array([0.1, 0.1, 10.0, 10.0])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=w_heavy_one)
        assert model.predict(np.zeros((1, 1)))[0] == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_regressor_fits_step(self):
        X = np.linspace(0, 1, 60).reshape(-1, 1)
        y = np.where(X.ravel() > 0.5, 10.0, -10.0)
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99


class TestEnsembles:
    def test_forest_beats_single_stump_on_noisy_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 5))
        y = ((X[:, 0] + X[:, 1] * X[:, 2]) > 0).astype(int)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, seed=1).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > accuracy_score(y, stump.predict(X))

    def test_adaboost_improves_over_rounds(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 4))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        weak = AdaBoostClassifier(n_estimators=1, max_depth=1).fit(X, y)
        strong = AdaBoostClassifier(n_estimators=30, max_depth=1).fit(X, y)
        assert accuracy_score(y, strong.predict(X)) >= accuracy_score(y, weak.predict(X))

    def test_gbr_reduces_residuals(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-2, 2, size=(200, 1))
        y = np.sin(2 * X.ravel())
        few = GradientBoostingRegressor(n_estimators=3, seed=0).fit(X, y)
        many = GradientBoostingRegressor(n_estimators=80, seed=0).fit(X, y)
        assert r2_score(y, many.predict(X)) > r2_score(y, few.predict(X))
        assert r2_score(y, many.predict(X)) > 0.9

    def test_gb_classifier_multiclass_proba(self, blobs3):
        X, y = blobs3
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        probs = model.predict_proba(X[:5])
        assert probs.shape == (5, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestMLP:
    def test_loss_decreases(self, blobs):
        X, y = blobs
        model = MLPClassifier(hidden=(16,), n_epochs=50).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_nonlinear_boundary(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 0.4).astype(int)
        model = MLPClassifier(hidden=(32, 16), n_epochs=200, lr=3e-3).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_regressor_learns_quadratic(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(-2, 2, size=(300, 1))
        y = X.ravel() ** 2
        model = MLPRegressor(hidden=(32,), n_epochs=300, lr=3e-3).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_n_parameters_counts(self):
        model = MLPClassifier(hidden=(8,), n_epochs=1).fit(
            np.random.default_rng(8).normal(size=(20, 3)), np.arange(20) % 2
        )
        # (3*8 + 8) + (8*2 + 2)
        assert model.n_parameters() == 3 * 8 + 8 + 8 * 2 + 2

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.ones((2, 2)))

    def test_multioutput_regression(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(100, 2))
        Y = np.column_stack([X[:, 0] + X[:, 1], X[:, 0] - X[:, 1]])
        model = MLPRegressor(hidden=(16,), n_epochs=200, lr=3e-3).fit(X, Y)
        pred = model.predict(X)
        assert pred.shape == (100, 2)


class TestEnsemblePersistence:
    """npz round-trips for the campaign-steering surrogate families."""

    def test_forest_roundtrip(self, blobs, tmp_path):
        from repro.ml import load_ensemble, save_ensemble

        X, y = blobs
        model = RandomForestClassifier(n_estimators=12, seed=3).fit(X, y)
        path = tmp_path / "forest.npz"
        save_ensemble(model, path)
        loaded = load_ensemble(path)
        assert isinstance(loaded, RandomForestClassifier)
        assert np.array_equal(loaded.predict(X), model.predict(X))
        assert np.array_equal(loaded.predict_proba(X), model.predict_proba(X))

    def test_gbdt_roundtrip_multiclass(self, blobs3, tmp_path):
        from repro.ml import load_ensemble, save_ensemble

        X, y = blobs3
        model = GradientBoostingClassifier(n_estimators=15, seed=4).fit(X, y)
        path = tmp_path / "gbdt.npz"
        save_ensemble(model, path)
        loaded = load_ensemble(path)
        assert isinstance(loaded, GradientBoostingClassifier)
        assert np.array_equal(loaded.predict(X), model.predict(X))
        assert np.array_equal(loaded.predict_proba(X), model.predict_proba(X))

    def test_roundtrip_preserves_params(self, blobs, tmp_path):
        from repro.ml import load_ensemble, save_ensemble

        X, y = blobs
        model = GradientBoostingClassifier(
            n_estimators=7, learning_rate=0.2, max_depth=2, subsample=0.8,
            seed=11,
        ).fit(X, y)
        save_ensemble(model, tmp_path / "m.npz")
        loaded = load_ensemble(tmp_path / "m.npz")
        for attr in ("n_estimators", "learning_rate", "max_depth",
                     "subsample", "seed"):
            assert getattr(loaded, attr) == getattr(model, attr)

    def test_unfitted_or_unsupported_raises(self, blobs, tmp_path):
        from repro.ml import save_ensemble

        with pytest.raises(ValueError):
            save_ensemble(RandomForestClassifier(), tmp_path / "x.npz")
        with pytest.raises(ValueError):
            save_ensemble(GradientBoostingClassifier(), tmp_path / "x.npz")
        X, y = blobs
        with pytest.raises(TypeError):
            save_ensemble(GaussianNB().fit(X, y), tmp_path / "x.npz")

    @pytest.mark.parametrize(
        "model_cls", [RandomForestClassifier, GradientBoostingClassifier]
    )
    def test_same_seed_is_deterministic(self, model_cls, blobs):
        X, y = blobs
        a = model_cls(n_estimators=10, seed=5).fit(X, y)
        b = model_cls(n_estimators=10, seed=5).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))
