"""Property-based tests (hypothesis) for ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score
from repro.ml.preprocessing import KFold, MinMaxScaler, StandardScaler, one_hot

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@given(
    arrays(
        dtype=float,
        shape=st.tuples(st.integers(2, 30), st.integers(1, 5)),
        elements=finite_floats,
    )
)
@settings(max_examples=50, deadline=None)
def test_standard_scaler_output_stats(X):
    from hypothesis import assume

    # Skip catastrophic-cancellation regimes: a column whose spread is
    # billions of times smaller than its magnitude loses the mean digits
    # in float64 before the scaler ever sees them.
    stds_in = X.std(axis=0)
    means_in = np.abs(X.mean(axis=0))
    assume(np.all((stds_in == 0.0) | (stds_in > 1e-7 * (1.0 + means_in))))
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)
    # std is 1 for non-constant columns, 0 for constant ones
    stds = Z.std(axis=0)
    assert np.all((np.isclose(stds, 1.0, atol=1e-6)) | (np.isclose(stds, 0.0)))


@given(
    arrays(
        dtype=float,
        shape=st.tuples(st.integers(2, 30), st.integers(1, 4)),
        elements=finite_floats,
    )
)
@settings(max_examples=50, deadline=None)
def test_minmax_scaler_bounded(X):
    Z = MinMaxScaler().fit_transform(X)
    assert np.all(Z >= -1e-12)
    assert np.all(Z <= 1.0 + 1e-12)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_accuracy_self_is_one(labels):
    y = np.array(labels)
    assert accuracy_score(y, y) == 1.0


@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=60),
    st.lists(st.integers(0, 3), min_size=1, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_confusion_matrix_total(a, b):
    n = min(len(a), len(b))
    y_true = np.array(a[:n])
    y_pred = np.array(b[:n])
    cm = confusion_matrix(y_true, y_pred, n_classes=4)
    assert cm.sum() == n
    assert np.all(cm >= 0)


@given(
    st.lists(st.integers(0, 1), min_size=2, max_size=60),
    st.lists(st.integers(0, 1), min_size=2, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_f1_bounded(a, b):
    n = min(len(a), len(b))
    score = f1_score(np.array(a[:n]), np.array(b[:n]))
    assert 0.0 <= score <= 1.0


@given(st.lists(st.integers(0, 9), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_one_hot_rows_sum_to_one(labels):
    Y = one_hot(np.array(labels), n_classes=10)
    assert np.allclose(Y.sum(axis=1), 1.0)
    assert np.array_equal(np.argmax(Y, axis=1), np.array(labels))


@given(st.integers(6, 60), st.integers(2, 6))
@settings(max_examples=50, deadline=None)
def test_kfold_partition_property(n, k):
    X = np.arange(n)
    seen = []
    for train_idx, test_idx in KFold(n_splits=k, seed=1).split(X):
        assert set(train_idx).isdisjoint(test_idx)
        assert len(train_idx) + len(test_idx) == n
        seen.extend(test_idx.tolist())
    assert sorted(seen) == list(range(n))
