"""Tests for k-means and PCA."""

import numpy as np
import pytest

from repro.ml.cluster import KMeans
from repro.ml.decomposition import PCA


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(c, 0.3, (50, 2)) for c in (0.0, 5.0, 10.0)])
        km = KMeans(n_clusters=3, seed=0).fit(X)
        # Each true blob should map dominantly to one cluster.
        for start in range(0, 150, 50):
            labels = km.labels_[start : start + 50]
            values, counts = np.unique(labels, return_counts=True)
            assert counts.max() >= 45

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        i2 = KMeans(n_clusters=2, seed=0).fit(X).inertia_
        i8 = KMeans(n_clusters=8, seed=0).fit(X).inertia_
        assert i8 < i2

    def test_predict_assigns_nearest_center(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1]])
        km = KMeans(n_clusters=2, seed=0).fit(X)
        a = km.predict(np.array([[0.05]]))[0]
        b = km.predict(np.array([[10.05]]))[0]
        assert a != b

    def test_fewer_samples_than_clusters_raises(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.ones((3, 1)))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            KMeans().predict(np.ones((2, 2)))


class TestPCA:
    def test_explained_variance_ordering(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 4)) * np.array([10.0, 3.0, 1.0, 0.1])
        pca = PCA(n_components=4).fit(X)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_dominant_direction_found(self):
        rng = np.random.default_rng(3)
        t = rng.normal(size=300)
        X = np.column_stack([t, 2.0 * t + rng.normal(0, 0.01, 300)])
        pca = PCA(n_components=1).fit(X)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([1.0, 2.0]) / np.sqrt(5.0)
        assert abs(abs(direction @ expected) - 1.0) < 1e-3

    def test_transform_inverse_roundtrip_full_rank(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(50, 3))
        pca = PCA(n_components=3).fit(X)
        assert np.allclose(pca.inverse_transform(pca.transform(X)), X, atol=1e-8)

    def test_variance_ratio_sums_below_one(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=2).fit(X)
        assert 0.0 < pca.explained_variance_ratio_.sum() <= 1.0

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            PCA(n_components=10).fit(np.ones((5, 3)))
