"""Tests for the graph attention classifier."""

import numpy as np
import pytest

from repro.ml.gnn import Graph, GraphAttentionClassifier


def _chain_graph(rng, n=15):
    X = rng.normal(size=(n, 4))
    edges = [(i, i + 1) for i in range(n - 1)]
    types = [0] * (n - 1)
    y = (X[:, 0] > 0).astype(int)
    return Graph(X, edges, types, y)


class TestGraph:
    def test_edge_bounds_checked(self):
        with pytest.raises(ValueError):
            Graph(np.ones((3, 2)), edges=[(0, 5)])

    def test_edge_types_length_checked(self):
        with pytest.raises(ValueError):
            Graph(np.ones((3, 2)), edges=[(0, 1)], edge_types=[0, 1])

    def test_default_edge_types(self):
        g = Graph(np.ones((3, 2)), edges=[(0, 1), (1, 2)])
        assert g.edge_types == [0, 0]


class TestGraphAttentionClassifier:
    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        graphs = [_chain_graph(rng) for _ in range(4)]
        gat = GraphAttentionClassifier(hidden=8, n_classes=2, n_epochs=40, lr=0.05)
        gat.fit(graphs)
        assert gat.loss_curve_[-1] < gat.loss_curve_[0]

    def test_inductive_generalization(self):
        rng = np.random.default_rng(1)
        graphs = [_chain_graph(rng) for _ in range(10)]
        gat = GraphAttentionClassifier(hidden=8, n_classes=2, n_epochs=250, lr=0.1)
        gat.fit(graphs)
        unseen = _chain_graph(rng)
        acc = np.mean(gat.predict(unseen) == unseen.y)
        assert acc > 0.75

    def test_predict_proba_shape_and_norm(self):
        rng = np.random.default_rng(2)
        graphs = [_chain_graph(rng) for _ in range(2)]
        gat = GraphAttentionClassifier(hidden=4, n_classes=2, n_epochs=5)
        gat.fit(graphs)
        probs = gat.predict_proba(graphs[0])
        assert probs.shape == (graphs[0].n_nodes, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_unlabeled_training_graph_rejected(self):
        g = Graph(np.ones((3, 2)), edges=[(0, 1)])
        with pytest.raises(ValueError):
            GraphAttentionClassifier().fit([g])

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            GraphAttentionClassifier().fit([])

    def test_unfitted_predict_raises(self):
        g = Graph(np.ones((3, 2)), edges=[(0, 1)])
        with pytest.raises(RuntimeError):
            GraphAttentionClassifier().predict(g)
