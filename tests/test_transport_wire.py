"""Wire codec tests: framing round-trips, corruption, chunked messages.

The tcp transport's correctness rests on one invariant: whatever byte
boundaries the kernel hands ``recv``, the decoder either yields exactly
the frames that were sent or raises :class:`WireError` and refuses to
continue.  The hypothesis property here drives that invariant with
arbitrary payload sets and arbitrary stream splits; the example-based
tests pin the individual failure modes (bad magic, version skew, CRC
flips, truncation, chunk-protocol violations).
"""

import os
import pickle
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.transports.wire import (
    AUTH_NONCE_BYTES,
    DEFAULT_CHUNK_BYTES,
    FrameDecoder,
    KIND_AUTH,
    KIND_CHUNK,
    KIND_CHUNK_HEAD,
    KIND_MSG,
    MAGIC,
    MAX_FRAME_PAYLOAD,
    MessageAssembler,
    MessageStream,
    PENDING,
    VERSION,
    WireError,
    client_handshake,
    encode_auth_challenge,
    encode_auth_response,
    encode_auth_welcome,
    encode_frame,
    encode_message,
    verify_auth_response,
    verify_auth_welcome,
)


def _feed_in_pieces(decoder, data, cuts):
    """Feed ``data`` split at the given sorted cut offsets."""
    frames = []
    prev = 0
    for cut in list(cuts) + [len(data)]:
        frames.extend(decoder.feed(data[prev:cut]))
        prev = cut
    return frames


# -- frame layer ---------------------------------------------------------


class TestFrameRoundTrip:
    def test_single_frame(self):
        data = encode_frame(KIND_MSG, b"hello")
        assert FrameDecoder().feed(data) == [(KIND_MSG, b"hello")]

    def test_empty_payload(self):
        data = encode_frame(KIND_MSG, b"")
        assert FrameDecoder().feed(data) == [(KIND_MSG, b"")]

    def test_byte_at_a_time(self):
        data = encode_frame(KIND_MSG, b"one") + encode_frame(KIND_CHUNK, b"two")
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i:i + 1]))
        assert frames == [(KIND_MSG, b"one"), (KIND_CHUNK, b"two")]
        decoder.check_eof()  # clean boundary

    def test_split_at_every_boundary(self):
        """One frame split at every possible offset decodes identically."""
        data = encode_frame(KIND_MSG, b"boundary-sweep")
        for cut in range(len(data) + 1):
            decoder = FrameDecoder()
            frames = decoder.feed(data[:cut])
            frames += decoder.feed(data[cut:])
            assert frames == [(KIND_MSG, b"boundary-sweep")]

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(WireError):
            encode_frame(99, b"payload")

    def test_oversize_payload_rejected_on_encode(self):
        with pytest.raises(WireError, match="chunk it"):
            encode_frame(KIND_MSG, b"\0" * (MAX_FRAME_PAYLOAD + 1))


class TestFrameCorruption:
    def test_bad_magic(self):
        data = bytearray(encode_frame(KIND_MSG, b"x"))
        data[0] = ord("Z")
        with pytest.raises(WireError, match="magic"):
            FrameDecoder().feed(bytes(data))

    def test_version_skew(self):
        data = bytearray(encode_frame(KIND_MSG, b"x"))
        data[2] = VERSION + 1
        with pytest.raises(WireError, match="protocol"):
            FrameDecoder().feed(bytes(data))

    def test_unknown_kind_on_decode(self):
        data = bytearray(encode_frame(KIND_MSG, b"x"))
        data[3] = 42
        with pytest.raises(WireError, match="kind"):
            FrameDecoder().feed(bytes(data))

    def test_oversize_length_rejected_before_buffering(self):
        header = struct.pack(
            ">2sBBI", MAGIC, VERSION, KIND_MSG, MAX_FRAME_PAYLOAD + 1
        )
        with pytest.raises(WireError, match="ceiling"):
            FrameDecoder().feed(header)

    def test_payload_flip_fails_crc(self):
        data = bytearray(encode_frame(KIND_MSG, b"payload"))
        data[10] ^= 0xFF
        with pytest.raises(WireError, match="CRC"):
            FrameDecoder().feed(bytes(data))

    def test_length_flip_fails_crc_not_desync(self):
        """A corrupted length is caught by the CRC, not trusted."""
        two = encode_frame(KIND_MSG, b"aaaa") + encode_frame(KIND_MSG, b"bb")
        data = bytearray(two)
        data[7] ^= 0x01  # low length byte of the first frame
        with pytest.raises(WireError):
            FrameDecoder().feed(bytes(data))

    def test_decoder_poisons_after_error(self):
        decoder = FrameDecoder()
        bad = bytearray(encode_frame(KIND_MSG, b"x"))
        bad[0] = 0
        with pytest.raises(WireError):
            decoder.feed(bytes(bad))
        with pytest.raises(WireError, match="desynchronized"):
            decoder.feed(encode_frame(KIND_MSG, b"fine"))

    def test_truncation_waits_then_eof_raises(self):
        data = encode_frame(KIND_MSG, b"truncated")
        decoder = FrameDecoder()
        assert decoder.feed(data[:-3]) == []  # incomplete: no frame, no error
        assert decoder.pending == len(data) - 3
        with pytest.raises(WireError, match="mid-frame"):
            decoder.check_eof()

    def test_eof_at_clean_boundary_is_fine(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(KIND_MSG, b"whole"))
        decoder.check_eof()


# -- message layer -------------------------------------------------------


class TestMessages:
    def test_small_message_single_frame(self):
        message = {"kind": "claim", "task": "t-01"}
        stream = MessageStream()
        assert stream.feed(encode_message(message)) == [message]

    def test_large_message_chunks(self):
        message = {"kind": "result", "blob": b"\xab" * (3 * DEFAULT_CHUNK_BYTES)}
        data = encode_message(message)
        decoder = FrameDecoder()
        kinds = [kind for kind, _ in decoder.feed(data)]
        assert kinds[0] == KIND_CHUNK_HEAD
        assert all(kind == KIND_CHUNK for kind in kinds[1:])
        assert len(kinds) >= 4  # head + at least 3 chunks
        stream = MessageStream()
        assert stream.feed(data) == [message]

    def test_custom_chunk_size(self):
        message = {"v": list(range(2000))}
        data = encode_message(message, chunk_bytes=128)
        assert MessageStream().feed(data) == [message]

    def test_interleaved_small_and_large(self):
        big = {"blob": b"\x01" * (DEFAULT_CHUNK_BYTES + 1)}
        small = {"kind": "heartbeat"}
        stream = MessageStream()
        got = stream.feed(
            encode_message(small) + encode_message(big) + encode_message(small)
        )
        assert got == [small, big, small]

    def test_chunk_without_header(self):
        with pytest.raises(WireError, match="without a chunk header"):
            MessageAssembler().feed(KIND_CHUNK, b"orphan")

    def test_none_is_a_valid_message(self):
        """``None`` round-trips — PENDING, not None, signals "incomplete"."""
        assert MessageStream().feed(encode_message(None)) == [None]

    def test_message_inside_chunk_run(self):
        assembler = MessageAssembler()
        head = pickle.dumps({"chunks": 2, "size": 4})
        assert assembler.feed(KIND_CHUNK_HEAD, head) is PENDING
        with pytest.raises(WireError, match="inside a chunk run"):
            assembler.feed(KIND_MSG, pickle.dumps({"kind": "stop"}))

    def test_header_inside_chunk_run(self):
        assembler = MessageAssembler()
        head = pickle.dumps({"chunks": 2, "size": 4})
        assembler.feed(KIND_CHUNK_HEAD, head)
        with pytest.raises(WireError, match="inside a chunk run"):
            assembler.feed(KIND_CHUNK_HEAD, head)

    def test_invalid_chunk_header(self):
        for head in ({"chunks": 0, "size": 4}, {"chunks": 2, "size": -1},
                     {"chunks": "2", "size": 4}, {}):
            with pytest.raises(WireError, match="invalid chunk header"):
                MessageAssembler().feed(KIND_CHUNK_HEAD, pickle.dumps(head))

    def test_size_mismatch(self):
        assembler = MessageAssembler()
        assembler.feed(KIND_CHUNK_HEAD, pickle.dumps({"chunks": 1, "size": 99}))
        with pytest.raises(WireError, match="announced"):
            assembler.feed(KIND_CHUNK, pickle.dumps({"x": 1}))

    def test_garbage_pickle_raises_wire_error(self):
        with pytest.raises(WireError, match="unpickle"):
            MessageAssembler().feed(KIND_MSG, b"\x80\x05 not a pickle")


# -- auth layer ----------------------------------------------------------


class TestAuthHandshake:
    """The HMAC handshake that gates the pickle layer on every stream."""

    def test_response_round_trips_and_returns_peer_nonce(self):
        nonce = os.urandom(AUTH_NONCE_BYTES)
        mine = os.urandom(AUTH_NONCE_BYTES)
        ((kind, payload),) = FrameDecoder().feed(
            encode_auth_response("secret", nonce, mine)
        )
        assert kind == KIND_AUTH
        assert verify_auth_response("secret", nonce, payload) == mine

    def test_wrong_secret_is_rejected(self):
        nonce = os.urandom(AUTH_NONCE_BYTES)
        ((_, payload),) = FrameDecoder().feed(
            encode_auth_response("wrong", nonce, os.urandom(AUTH_NONCE_BYTES))
        )
        with pytest.raises(WireError, match="secret mismatch"):
            verify_auth_response("right", nonce, payload)

    def test_response_is_bound_to_the_challenge_nonce(self):
        """A captured response does not replay against a fresh challenge."""
        ((_, payload),) = FrameDecoder().feed(encode_auth_response(
            "s", os.urandom(AUTH_NONCE_BYTES), os.urandom(AUTH_NONCE_BYTES)
        ))
        with pytest.raises(WireError, match="secret mismatch"):
            verify_auth_response("s", os.urandom(AUTH_NONCE_BYTES), payload)

    def test_response_mac_cannot_be_reflected_as_welcome(self):
        """Step MACs are domain-separated: echoing the dialer's own
        response MAC back as a welcome must not verify."""
        nonce = os.urandom(AUTH_NONCE_BYTES)
        ((_, payload),) = FrameDecoder().feed(
            encode_auth_response("s", nonce, nonce)
        )
        response_mac = payload[4:36]
        with pytest.raises(WireError):
            verify_auth_welcome("s", nonce, b"WEL2" + response_mac)

    def test_welcome_round_trips(self):
        nonce = os.urandom(AUTH_NONCE_BYTES)
        ((_, payload),) = FrameDecoder().feed(
            encode_auth_welcome("secret", nonce)
        )
        verify_auth_welcome("secret", nonce, payload)
        with pytest.raises(WireError, match="secret mismatch"):
            verify_auth_welcome("other", nonce, payload)

    def test_malformed_auth_payloads_raise(self):
        nonce = os.urandom(AUTH_NONCE_BYTES)
        for payload in (b"", b"RSP2", b"RSP2" + b"\0" * 10, b"\0" * 68):
            with pytest.raises(WireError, match="malformed"):
                verify_auth_response("s", nonce, payload)
        for payload in (b"", b"WEL2" + b"\0" * 5):
            with pytest.raises(WireError, match="malformed"):
                verify_auth_welcome("s", nonce, payload)

    def test_auth_frame_refused_by_the_message_layer(self):
        """Post-handshake, an auth frame can never reach pickle.loads."""
        with pytest.raises(WireError, match="outside the connection"):
            MessageAssembler().feed(KIND_AUTH, b"CHA2" + b"\0" * 32)

    def test_full_handshake_over_a_socketpair(self):
        """Both sides authenticate; bytes past the welcome are preserved."""
        secret = "s3cret"
        dialer, listener = socket.socketpair()
        errors = []

        def serve():
            try:
                nonce = os.urandom(AUTH_NONCE_BYTES)
                listener.sendall(encode_auth_challenge(nonce))
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    frames.extend(decoder.feed(listener.recv(4096)))
                kind, payload = frames[0]
                assert kind == KIND_AUTH
                peer = verify_auth_response(secret, nonce, payload)
                listener.sendall(encode_auth_welcome(secret, peer))
                listener.sendall(encode_message({"kind": "payload"}))
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            leftover = client_handshake(dialer, secret, timeout=5)
            thread.join(timeout=5)
            assert not errors
            stream = MessageStream()
            messages = stream.feed(leftover)
            dialer.settimeout(5)
            while not messages:
                messages = stream.feed(dialer.recv(4096))
            assert messages == [{"kind": "payload"}]
        finally:
            dialer.close()
            listener.close()

    def test_handshake_refuses_a_non_challenge_opening(self):
        dialer, listener = socket.socketpair()
        try:
            listener.sendall(encode_frame(KIND_MSG, b"not a challenge"))
            with pytest.raises(WireError, match="challenge"):
                client_handshake(dialer, "s", timeout=5)
        finally:
            dialer.close()
            listener.close()

    def test_eof_during_handshake_raises_not_hangs(self):
        dialer, listener = socket.socketpair()
        listener.close()
        try:
            with pytest.raises(WireError, match="closed during"):
                client_handshake(dialer, "s", timeout=5)
        finally:
            dialer.close()


# -- property: arbitrary payloads, arbitrary stream splits ---------------


@st.composite
def _payloads_and_cuts(draw):
    payloads = draw(st.lists(
        st.binary(min_size=0, max_size=512), min_size=1, max_size=6,
    ))
    stream = b"".join(encode_frame(KIND_MSG, p) for p in payloads)
    cuts = draw(st.lists(
        st.integers(min_value=0, max_value=len(stream)),
        max_size=8,
    ).map(sorted))
    return payloads, stream, cuts


@settings(max_examples=120, deadline=None)
@given(_payloads_and_cuts())
def test_frames_survive_arbitrary_splits(case):
    """encode -> split anywhere -> decode recovers every frame in order."""
    payloads, stream, cuts = case
    decoder = FrameDecoder()
    frames = _feed_in_pieces(decoder, stream, cuts)
    assert frames == [(KIND_MSG, p) for p in payloads]
    decoder.check_eof()


@settings(max_examples=80, deadline=None)
@given(
    obj=st.recursive(
        st.none() | st.booleans() | st.integers() | st.text(max_size=40)
        | st.binary(max_size=40),
        lambda inner: st.lists(inner, max_size=4)
        | st.dictionaries(st.text(max_size=8), inner, max_size=4),
        max_leaves=12,
    ),
    chunk_bytes=st.integers(min_value=16, max_value=1024),
    cut=st.integers(min_value=0, max_value=10_000),
)
def test_messages_round_trip_any_chunking(obj, chunk_bytes, cut):
    """Any picklable object survives encode/decode at any chunk size."""
    data = encode_message(obj, chunk_bytes=chunk_bytes)
    stream = MessageStream()
    got = stream.feed(data[:min(cut, len(data))])
    got += stream.feed(data[min(cut, len(data)):])
    assert got == [obj]
    stream.check_eof()


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=256),
    flip=st.integers(min_value=0),
)
def test_any_single_byte_flip_is_detected(payload, flip):
    """Flipping any one byte of a frame raises; it never yields bad data."""
    data = bytearray(encode_frame(KIND_MSG, payload))
    data[flip % len(data)] ^= 0x5A
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(bytes(data))
    except WireError:
        return  # detected: the stream is correctly refused
    # The flip must not have produced a frame with altered payload.
    assert frames == [] or frames == [(KIND_MSG, payload)]
