"""Tests for netlists, the synthetic core generator, STA, and SDF export."""

import numpy as np
import pytest

from repro.circuit import (
    Instance,
    Netlist,
    SpiceLikeCharacterizer,
    StaticTimingAnalysis,
    build_default_library,
    synthesize_core,
    write_sdf,
)


@pytest.fixture(scope="module")
def lib():
    library = build_default_library()
    SpiceLikeCharacterizer().characterize_library(library)
    return library


def _chain_netlist(lib, n=5):
    """PI -> INV -> INV -> ... chain."""
    net = Netlist("chain")
    net.add_primary_input("pi0")
    prev = "pi0"
    for i in range(n):
        net.add_instance(
            Instance(name=f"u{i}", cell_name="INV_X1", fanin={"A": prev}, wire_cap_ff=1.0)
        )
        prev = f"u{i}"
    net.mark_primary_output(prev)
    return net


class TestNetlist:
    def test_unknown_driver_rejected(self):
        net = Netlist()
        with pytest.raises(ValueError):
            net.add_instance(Instance(name="u0", cell_name="INV_X1", fanin={"A": "ghost"}))

    def test_duplicate_names_rejected(self):
        net = Netlist()
        net.add_primary_input("a")
        with pytest.raises(ValueError):
            net.add_primary_input("a")

    def test_topological_order_respects_dependencies(self, lib):
        net = _chain_netlist(lib)
        order = net.topological_order()
        assert order == [f"u{i}" for i in range(5)]

    def test_cycle_detection(self):
        net = Netlist()
        net.add_primary_input("pi0")
        net.add_instance(Instance(name="u0", cell_name="INV_X1", fanin={"A": "pi0"}))
        net.add_instance(Instance(name="u1", cell_name="INV_X1", fanin={"A": "u0"}))
        # Manually create a cycle
        net.get("u0").fanin["A"] = "u1"
        net._fanout_cache = None
        with pytest.raises(ValueError):
            net.topological_order()

    def test_load_includes_sinks_and_wire(self, lib):
        net = _chain_netlist(lib)
        # u0 drives u1 (one INV_X1 input cap) plus its own wire cap.
        load = net.load_of("u0", lib)
        assert load == pytest.approx(lib.get("INV_X1").input_cap_ff + 1.0)

    def test_mark_unknown_po_rejected(self):
        with pytest.raises(ValueError):
            Netlist().mark_primary_output("nope")


class TestSynthesizeCore:
    def test_size_and_outputs(self, lib):
        net = synthesize_core(lib, n_instances=200, seed=0)
        assert len(net) == 200
        assert len(net.primary_outputs) > 0

    def test_is_acyclic(self, lib):
        net = synthesize_core(lib, n_instances=150, seed=1)
        assert len(net.topological_order()) == 150

    def test_deterministic_per_seed(self, lib):
        a = synthesize_core(lib, n_instances=100, seed=7)
        b = synthesize_core(lib, n_instances=100, seed=7)
        assert [i.cell_name for i in a] == [i.cell_name for i in b]

    def test_uses_multiple_cell_types(self, lib):
        net = synthesize_core(lib, n_instances=300, seed=2)
        kinds = {inst.cell_name for inst in net}
        assert len(kinds) > 10

    def test_contains_sequential_endpoints(self, lib):
        net = synthesize_core(lib, n_instances=300, seed=3)
        assert any(lib.get(i.cell_name).is_sequential for i in net)


class TestSTA:
    def test_chain_arrival_accumulates(self, lib):
        net = _chain_netlist(lib, n=4)
        sta = StaticTimingAnalysis(net, lib, clock_period_ps=1000.0).run()
        arrivals = [sta.timings[f"u{i}"].arrival for i in range(4)]
        assert all(np.diff(arrivals) > 0)

    def test_worst_slack_matches_period(self, lib):
        net = _chain_netlist(lib, n=4)
        sta1 = StaticTimingAnalysis(net, lib, clock_period_ps=1000.0).run()
        sta2 = StaticTimingAnalysis(net, lib, clock_period_ps=500.0).run()
        assert sta1.worst_slack - sta2.worst_slack == pytest.approx(500.0)

    def test_min_feasible_period_consistent(self, lib):
        net = synthesize_core(lib, n_instances=150, seed=4)
        sta = StaticTimingAnalysis(net, lib, clock_period_ps=10_000.0).run()
        p = sta.min_feasible_period()
        tight = StaticTimingAnalysis(net, lib, clock_period_ps=p).run()
        assert tight.worst_slack == pytest.approx(0.0, abs=1e-6)

    def test_critical_path_is_connected(self, lib):
        net = synthesize_core(lib, n_instances=200, seed=5)
        sta = StaticTimingAnalysis(net, lib).run()
        path = sta.critical_path()
        assert len(path) >= 2
        for a, b in zip(path[:-1], path[1:]):
            assert a in net.get(b).fanin.values()

    def test_hotter_corner_longer_period(self):
        cool_lib = build_default_library("cool", temperature_c=25.0)
        hot_lib = build_default_library("hot", temperature_c=125.0)
        ch = SpiceLikeCharacterizer()
        ch.characterize_library(cool_lib)
        ch.characterize_library(hot_lib)
        net = synthesize_core(cool_lib, n_instances=150, seed=6)
        p_cool = StaticTimingAnalysis(net, cool_lib).run().min_feasible_period()
        p_hot = StaticTimingAnalysis(net, hot_lib).run().min_feasible_period()
        assert p_hot > p_cool

    def test_results_require_run(self, lib):
        net = _chain_netlist(lib)
        sta = StaticTimingAnalysis(net, lib)
        with pytest.raises(RuntimeError):
            _ = sta.worst_slack

    def test_cell_resolver_override(self, lib):
        net = _chain_netlist(lib, n=3)
        sta_base = StaticTimingAnalysis(net, lib).run()
        slow = lib.get("INV_X1").clone_uncharacterized("INV_SLOW")
        SpiceLikeCharacterizer().characterize_cell(slow, temperature_c=150.0, delta_vth=0.06)
        sta_slow = StaticTimingAnalysis(
            net, lib, cell_resolver=lambda inst: slow
        ).run()
        assert sta_slow.worst_arrival > sta_base.worst_arrival


class TestSDF:
    def test_sdf_structure(self, lib):
        net = _chain_netlist(lib, n=2)
        sta = StaticTimingAnalysis(net, lib).run()
        text = write_sdf(sta)
        assert "(DELAYFILE" in text
        assert text.count("(CELL") >= 2
        assert "IOPATH" in text

    def test_sdf_written_to_file(self, lib, tmp_path):
        net = _chain_netlist(lib, n=2)
        sta = StaticTimingAnalysis(net, lib).run()
        out = tmp_path / "design.sdf"
        write_sdf(sta, path=str(out))
        assert out.read_text().startswith("(DELAYFILE")
