"""The Fig. 1 loop driving the multicore platform (framework generality)."""

import numpy as np
import pytest

from repro.core import ReliabilityManagementLoop
from repro.system import (
    Core,
    Platform,
    StaticManager,
    first_fit_partition,
    generate_task_set,
)
from repro.system.rl import Discretizer, QLearningAgent
from repro.system.ser import soft_error_rate


def _build_platform(seed=0):
    tasks = generate_task_set(n_tasks=8, total_utilization=2.0, seed=0)
    cores = [Core(i) for i in range(4)]
    return Platform(cores, tasks, first_fit_partition(tasks, cores), seed=seed)


def _make_loop(seed=0):
    """Wire the generic Fig. 1 loop to the Platform as a DVFS manager."""
    discretize = Discretizer(
        [
            np.array([50.0, 62.0, 75.0]),
            np.array([0.25, 0.5, 0.75]),
        ]
    )

    def observe(platform):
        return discretize(
            [
                float(np.max(platform.thermal.temperatures)),
                float(np.mean([c.utilization for c in platform.cores])),
            ]
        )

    def apply_action(platform, action):
        for core in platform.cores:
            core.set_level(min(action, len(core.vf_levels) - 1))

    snapshots = {}

    def step_system(platform):
        snapshots["before"] = (
            platform.metrics.deadline_misses,
            platform.metrics.energy_j,
        )
        for _ in range(10):
            platform.step()

    def reward(platform):
        d_miss = platform.metrics.deadline_misses - snapshots["before"][0]
        d_energy = platform.metrics.energy_j - snapshots["before"][1]
        return -40.0 * d_miss - 0.4 * d_energy

    agent = QLearningAgent(n_actions=5, seed=seed)
    return ReliabilityManagementLoop(agent, observe, apply_action, reward, step_system)


class TestFrameworkOnPlatform:
    def test_loop_runs_and_accumulates_history(self):
        loop = _make_loop()
        platform = _build_platform()
        history = loop.run_episode(platform, n_epochs=20)
        assert len(history.rewards) == 20
        assert platform.metrics.jobs_released > 0

    def test_loop_learns_to_avoid_deadline_misses(self):
        loop = _make_loop(seed=1)
        # Train over several episodes.
        for episode in range(8):
            loop.run_episode(_build_platform(seed=episode), n_epochs=30, learn=True)
        # Deployment: frozen policy on a fresh platform.
        platform = _build_platform(seed=99)
        loop.run_episode(platform, n_epochs=30, learn=False)
        platform.finalize()
        assert platform.metrics.deadline_hit_rate > 0.9

    def test_framework_matches_specialized_manager_quality(self):
        """The generic loop should land near the hand-written static-max
        baseline on deadline hits while saving some energy."""
        loop = _make_loop(seed=2)
        for episode in range(8):
            loop.run_episode(_build_platform(seed=episode), n_epochs=30, learn=True)
        managed = _build_platform(seed=7)
        loop.run_episode(managed, n_epochs=30, learn=False)
        managed.finalize()

        static = _build_platform(seed=7)
        static_mgr = StaticManager()
        for _ in range(30):
            static_mgr.control(static)
            for _ in range(10):
                static.step()
        static.finalize()

        assert managed.metrics.deadline_hit_rate > 0.9
        assert managed.metrics.energy_j <= static.metrics.energy_j * 1.05

    def test_reward_signal_reflects_ser_voltage_coupling(self):
        # Sanity on the observation/knob coupling the loop exploits:
        # the lowest level has highest SER and slowest execution.
        core = Core(0)
        core.set_level(0)
        low_v = core.vf.voltage
        core.set_level(len(core.vf_levels) - 1)
        high_v = core.vf.voltage
        assert float(soft_error_rate(low_v)) > float(soft_error_rate(high_v))
