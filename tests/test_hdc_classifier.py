"""Tests for the HDC classifier and its error robustness (Sec. II claim)."""

import numpy as np
import pytest

from repro.hdc import HDCClassifier


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(c, 0.5, size=(40, 5)) for c in (0.0, 2.5, 5.0)])
    y = np.repeat([0, 1, 2], 40)
    return X, y


@pytest.fixture(scope="module")
def fitted(blobs):
    X, y = blobs
    return HDCClassifier(dim=2048, retrain_epochs=2, seed=0).fit(X, y)


class TestHDCClassifier:
    def test_clean_accuracy(self, fitted, blobs):
        X, y = blobs
        assert np.mean(fitted.predict(X) == y) > 0.95

    def test_robust_at_forty_percent_errors(self, fitted, blobs):
        # The paper's headline: ~40 % component error rate barely moves
        # inference accuracy.
        X, y = blobs
        clean = np.mean(fitted.predict(X[::4]) == y[::4])
        noisy = np.mean(
            fitted.predict(X[::4], error_rate=0.4, rng=np.random.default_rng(1))
            == y[::4]
        )
        assert clean - noisy <= 0.05

    def test_collapse_at_half_errors(self, fitted, blobs):
        # At 50 % flips the query hypervector is pure noise: accuracy must
        # drop to roughly chance level, confirming errors are really injected.
        X, y = blobs
        noisy = np.mean(
            fitted.predict(X, error_rate=0.5, rng=np.random.default_rng(2)) == y
        )
        assert noisy < 0.75

    def test_error_sweep_monotone_envelope(self, fitted, blobs):
        X, y = blobs
        accs = fitted.accuracy_under_errors(
            X[::4], y[::4], [0.0, 0.2, 0.4, 0.5], n_repeats=2
        )
        assert accs[0] >= accs[-1]
        assert accs[0] > 0.9

    def test_corrupt_prototypes_harsher(self, fitted, blobs):
        X, y = blobs
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        q_only = np.mean(fitted.predict(X, error_rate=0.45, rng=rng1) == y)
        both = np.mean(
            fitted.predict(X, error_rate=0.45, rng=rng2, corrupt_prototypes=True) == y
        )
        assert both <= q_only + 0.1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HDCClassifier().predict(np.ones((2, 2)))

    def test_single_feature_input(self):
        rng = np.random.default_rng(4)
        X = np.concatenate([rng.normal(0, 0.3, 30), rng.normal(3, 0.3, 30)])
        y = np.repeat([0, 1], 30)
        clf = HDCClassifier(dim=1024, seed=1).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.9

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(20), np.linspace(0, 1, 20)])
        y = (X[:, 1] > 0.5).astype(int)
        clf = HDCClassifier(dim=1024, seed=2).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.8

    def test_string_labels(self):
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(0, 0.4, (20, 2)), rng.normal(3, 0.4, (20, 2))])
        y = np.array(["safe"] * 20 + ["faulty"] * 20)
        clf = HDCClassifier(dim=1024, seed=3).fit(X, y)
        assert set(clf.predict(X)) <= {"safe", "faulty"}
