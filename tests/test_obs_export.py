"""Tests for the run-record exporters (repro.obs.export).

The format contracts are asserted through the same validators CI runs
on exported artifacts (``scripts/check_obs_exports.py``), so a test
failure here and a red observability-smoke job mean the same thing.
"""

import importlib.util
import json
from pathlib import Path

from repro import obs
from repro.obs import RunRecorder, chrome_trace, load_run_record, prometheus_text
from repro.obs.export import (
    EVENT_PID,
    SPAN_PID,
    write_chrome_trace,
    write_prometheus_text,
)


def _load_checkers():
    """Import scripts/check_obs_exports.py (scripts/ is not a package)."""
    path = Path(__file__).resolve().parents[1] / "scripts" / "check_obs_exports.py"
    spec = importlib.util.spec_from_file_location("check_obs_exports", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CHECKERS = _load_checkers()


def _record():
    """A synthetic loaded run record with a known span/metric shape."""
    return {
        "meta": {"run_id": "run-a", "name": "exp", "elapsed_s": 2.0,
                 "version": "0.1.0", "status": "ok", "config": {}},
        "spans": {"root": {
            "name": "run", "count": 1, "total_s": 0.0, "children": [
                {"name": "runtime.campaign", "count": 1, "total_s": 1.0,
                 "attrs": {"jobs": 2}, "children": [
                     {"name": "arch.fi.chunk", "count": 4, "total_s": 1.5,
                      "attrs": {}, "children": []},
                     {"name": "runtime.cache.scan", "count": 1,
                      "total_s": 0.5, "attrs": {}, "children": []},
                 ]},
            ],
        }},
        "metrics": {
            "counters": {"runtime.cache.hits": 3,
                         "arch.fault_injection.trials": 64},
            "gauges": {"runtime.runner.jobs": 2},
            "histograms": {"runtime.unit.seconds": {
                "count": 4, "total": 2.0, "min": 0.1, "max": 1.0,
                "mean": 0.5, "p50": 0.4, "p95": 0.9, "p99": 1.0,
            }},
        },
        "campaigns": [],
        "outcomes": {"histogram": {"masked": 3, "sdc": 1}},
    }


class TestChromeTrace:
    def test_document_passes_the_ci_validator(self):
        document = chrome_trace(_record())
        assert CHECKERS.check_chrome_trace(document) == []
        assert document["otherData"]["run_id"] == "run-a"

    def test_parent_slice_widens_to_contain_children(self):
        # campaign total_s is 1.0 but its children sum to 2.0 (re-parented
        # parallel work); the timeline slice must still nest them.
        document = chrome_trace(_record())
        slices = {e["name"]: e for e in document["traceEvents"]
                  if e["ph"] == "X"}
        campaign = slices["runtime.campaign"]
        assert campaign["dur"] == 2.0 * 1e6
        assert campaign["args"]["total_s"] == 1.0  # honest number survives
        chunk = slices["arch.fi.chunk"]
        scan = slices["runtime.cache.scan"]
        assert chunk["ts"] == campaign["ts"]
        assert scan["ts"] == chunk["ts"] + chunk["dur"]  # back-to-back
        assert scan["ts"] + scan["dur"] <= campaign["ts"] + campaign["dur"]

    def test_span_slices_carry_count_and_attrs(self):
        document = chrome_trace(_record())
        (campaign,) = [e for e in document["traceEvents"]
                       if e.get("name") == "runtime.campaign"]
        assert campaign["pid"] == SPAN_PID
        assert campaign["args"]["count"] == 1
        assert campaign["args"]["jobs"] == 2

    def test_events_become_instants_with_relative_timestamps(self):
        events = [
            {"ev": "campaign.begin", "t": 100.0, "pid": 7, "trials": 64},
            {"ev": "fi.trials", "t": 100.5, "pid": 7,
             "items": [[1, "pc", 0, "crash"]]},
        ]
        document = chrome_trace(_record(), events=events)
        assert CHECKERS.check_chrome_trace(document) == []
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["campaign.begin", "fi.trials"]
        assert instants[0]["ts"] == 0.0
        assert instants[1]["ts"] == 0.5 * 1e6
        assert all(e["pid"] == EVENT_PID for e in instants)
        # Bulky list/dict payloads (fi.trials frames) stay out of args.
        assert "items" not in instants[1]["args"]
        assert instants[0]["args"]["trials"] == 64

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(_record(), tmp_path / "trace.json")
        document = json.loads(Path(path).read_text())
        assert CHECKERS.check_chrome_trace(document) == []


class TestPrometheusText:
    def test_text_passes_the_ci_validator(self):
        assert CHECKERS.check_prometheus_text(prometheus_text(_record())) == []

    def test_counters_are_total_suffixed(self):
        text = prometheus_text(_record())
        assert "# TYPE repro_runtime_cache_hits_total counter" in text
        assert "repro_runtime_cache_hits_total 3" in text

    def test_histograms_are_summaries_with_quantiles(self):
        text = prometheus_text(_record())
        assert "# TYPE repro_runtime_unit_seconds summary" in text
        assert 'repro_runtime_unit_seconds{quantile="0.5"} 0.4' in text
        assert 'repro_runtime_unit_seconds{quantile="0.99"} 1.0' in text
        assert "repro_runtime_unit_seconds_sum 2.0" in text
        assert "repro_runtime_unit_seconds_count 4" in text

    def test_run_info_carries_identity_labels(self):
        text = prometheus_text(_record())
        assert 'run_id="run-a"' in text
        assert 'experiment="exp"' in text
        assert "repro_run_elapsed_seconds 2.0" in text

    def test_write_prometheus_text_and_cli_validator(self, tmp_path):
        trace = write_chrome_trace(_record(), tmp_path / "t.json")
        prom = write_prometheus_text(_record(), tmp_path / "m.prom")
        assert CHECKERS.main(["--trace", str(trace), "--prom", str(prom)]) == 0


class TestEndToEnd:
    def test_recorded_campaign_exports_validate(self, tmp_path):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.fibonacci(6))
        with RunRecorder(tmp_path, name="export-e2e") as recorder:
            injector.run_campaign(n_trials=16, seed=0)
        record = load_run_record(recorder.run_dir)
        events = obs.read_events(recorder.events_path)
        assert CHECKERS.check_chrome_trace(chrome_trace(record, events)) == []
        assert CHECKERS.check_prometheus_text(prometheus_text(record)) == []
