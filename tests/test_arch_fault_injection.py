"""Tests for fault-injection campaigns, vulnerability, and FI acceleration."""

import numpy as np
import pytest

from repro.arch import FaultInjector, FIAccelerationStudy, Outcome
from repro.arch import programs as P
from repro.arch.vulnerability import (
    element_features,
    masked_by_design,
    vulnerability_table,
    vulnerable_labels,
)


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(P.checksum(12))


@pytest.fixture(scope="module")
def campaign(injector):
    return injector.run_campaign(n_trials=400, seed=0)


class TestFaultInjector:
    def test_golden_matches_plain_run(self, injector):
        from repro.arch.cpu import CPU

        prog = P.checksum(12)
        assert injector.golden_output == CPU(prog).run().output(prog.output_range)

    def test_outcomes_partition_trials(self, campaign):
        assert sum(campaign.counts().values()) == 400

    def test_all_outcome_kinds_possible(self, campaign):
        rates = campaign.rates()
        assert rates[Outcome.MASKED] > 0.3  # most faults vanish
        assert rates[Outcome.SDC] > 0.0
        assert rates[Outcome.CRASH] + rates[Outcome.HANG] > 0.0

    def test_r0_injections_always_masked(self, injector, campaign):
        assert masked_by_design(P.checksum(12), campaign) == 1.0

    def test_records_carry_context(self, campaign):
        has_context = [r for r in campaign.records if r.opcode_at_injection]
        assert len(has_context) > 0.9 * len(campaign.records)

    def test_injection_is_deterministic_given_coords(self, injector):
        a = injector.inject_one(10, "reg3", 5)
        b = injector.inject_one(10, "reg3", 5)
        assert a.outcome == b.outcome

    def test_high_bit_pc_flip_crashes(self, injector):
        record = injector.inject_one(5, "pc", 20)
        assert record.outcome in (Outcome.CRASH, Outcome.HANG)

    def test_element_failure_rates_structure(self, campaign):
        rates = campaign.element_failure_rates()
        assert all(0.0 <= v <= 1.0 for v in rates.values())

    def test_empty_campaign_rates_raise(self, injector):
        from repro.arch.fault_injection import CampaignResult

        empty = CampaignResult(program="x", golden_output=(), golden_cycles=1)
        with pytest.raises(ValueError):
            empty.rates()


class TestVulnerabilityFeatures:
    def test_feature_matrix_shape(self):
        prog = P.dot_product(8)
        elements, X = element_features(prog)
        assert len(elements) == 18
        assert X.shape == (18, 9)

    def test_pc_marked_special(self):
        prog = P.dot_product(8)
        elements, X = element_features(prog)
        pc_row = X[elements.index("pc")]
        assert pc_row[-2] == 1.0

    def test_accumulator_reads_dominate(self):
        # In dot_product r6 is the accumulator: read+written every iteration.
        prog = P.dot_product(8)
        elements, X = element_features(prog)
        r6 = X[elements.index("reg6")]
        r15 = X[elements.index("reg15")]  # unused register
        assert r6[2] > r15[2]  # dynamic reads

    def test_vulnerability_table_and_labels(self):
        injector = FaultInjector(P.fibonacci(8))
        table = vulnerability_table(injector, n_trials_per_element=30, seed=0)
        assert set(table) == set(
            [f"reg{i}" for i in range(16)] + ["pc", "ir"]
        )
        labels, threshold = vulnerable_labels(table)
        assert set(labels.values()) <= {0, 1}
        # PC faults are highly disruptive; unused registers are not.
        assert table["pc"] > table["reg15"]


class TestFIAcceleration:
    @pytest.fixture(scope="class")
    def study(self):
        return FIAccelerationStudy(
            [P.checksum(10), P.fibonacci(8), P.vector_add(6)],
            n_trials_per_element=30,
            seed=0,
        )

    def test_pools_all_elements(self, study):
        assert study.n_samples == 3 * 18

    def test_twenty_percent_training_is_accurate(self, study):
        # The [20] claim: ~20 % of the injection data gives comparable
        # vulnerability prediction accuracy.
        result = study.evaluate(train_fraction=0.2, model="knn")
        assert result.accuracy > 0.8
        assert result.injection_savings == pytest.approx(0.8, abs=0.01)

    def test_svm_also_works(self, study):
        result = study.evaluate(train_fraction=0.3, model="svm")
        assert result.accuracy > 0.7

    def test_accuracy_curve_shape(self, study):
        curve = study.accuracy_vs_fraction(fractions=(0.1, 0.5), model="knn", n_repeats=2)
        assert len(curve) == 2
        assert all(acc > 0.6 for _, acc in curve)

    def test_invalid_fraction_rejected(self, study):
        with pytest.raises(ValueError):
            study.evaluate(train_fraction=1.5)
