"""Tests for signal-probability propagation and the workload aging flow."""

import numpy as np
import pytest

from repro.circuit import (
    AgingFlow,
    Instance,
    Netlist,
    SpiceLikeCharacterizer,
    build_default_library,
    instance_stress,
    propagate_probabilities,
    switching_activity,
    synthesize_core,
)
from repro.circuit.signal_probability import output_probability


class TestOutputProbability:
    def test_inverter(self):
        assert output_probability("INV", [0.3]) == pytest.approx(0.7)

    def test_nand2(self):
        assert output_probability("NAND2", [0.5, 0.5]) == pytest.approx(0.75)

    def test_nor2(self):
        assert output_probability("NOR2", [0.5, 0.5]) == pytest.approx(0.25)

    def test_xor2(self):
        assert output_probability("XOR2", [0.5, 0.5]) == pytest.approx(0.5)
        assert output_probability("XOR2", [1.0, 0.0]) == pytest.approx(1.0)

    def test_aoi21(self):
        # Y = !((A & B) | C); with A=B=1, C=0 -> 0
        assert output_probability("AOI21", [1.0, 1.0, 0.0]) == pytest.approx(0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            output_probability("MUX4", [0.5])


class TestPropagation:
    @pytest.fixture(scope="class")
    def setup(self):
        lib = build_default_library()
        SpiceLikeCharacterizer().characterize_library(lib)
        net = synthesize_core(lib, n_instances=150, seed=0)
        return lib, net

    def test_probabilities_bounded(self, setup):
        _, net = setup
        probs = propagate_probabilities(net)
        assert all(0.0 <= p <= 1.0 for p in probs.values())
        assert len(probs) == len(net) + len(net.primary_inputs)

    def test_pi_override(self, setup):
        _, net = setup
        pi = net.primary_inputs[0]
        probs = propagate_probabilities(net, {pi: 0.9})
        assert probs[pi] == 0.9

    def test_invalid_pi_probability(self, setup):
        _, net = setup
        with pytest.raises(ValueError):
            propagate_probabilities(net, {net.primary_inputs[0]: 1.5})

    def test_inverter_chain_alternates(self):
        net = Netlist("chain")
        net.add_primary_input("pi0")
        net.add_instance(Instance("u0", "INV_X1", {"A": "pi0"}))
        net.add_instance(Instance("u1", "INV_X1", {"A": "u0"}))
        net.mark_primary_output("u1")
        probs = propagate_probabilities(net, {"pi0": 0.8})
        assert probs["u0"] == pytest.approx(0.2)
        assert probs["u1"] == pytest.approx(0.8)

    def test_activity_peaks_at_half(self):
        assert switching_activity(0.5) == pytest.approx(0.5)
        assert switching_activity(0.0) == 0.0
        assert switching_activity(1.0) == 0.0

    def test_stress_fields(self, setup):
        _, net = setup
        stress = instance_stress(net)
        sample = next(iter(stress.values()))
        assert set(sample) == {"duty_cycle", "activity", "output_probability"}
        duties = [s["duty_cycle"] for s in stress.values()]
        # Real logic produces a spread of stress conditions.
        assert max(duties) - min(duties) > 0.3


class TestAgingFlow:
    @pytest.fixture(scope="class")
    def signoff(self):
        lib = build_default_library()
        ch = SpiceLikeCharacterizer()
        ch.characterize_library(lib)
        net = synthesize_core(lib, n_instances=150, seed=1)
        flow = AgingFlow(ch, lifetime_s=3.15e8, temperature_c=85.0)
        return flow, net, lib, flow.signoff(
            net, build_default_library, ml_training_samples=2500
        )

    def test_worst_case_slower_than_fresh(self, signoff):
        _, _, _, result = signoff
        assert result.worst_case_period > result.fresh_period

    def test_workload_aware_between(self, signoff):
        _, _, _, result = signoff
        assert result.fresh_period < result.workload_aware_period
        assert result.workload_aware_period < result.worst_case_period

    def test_guardband_reduction_positive(self, signoff):
        _, _, _, result = signoff
        assert result.guardband_reduction > 0.1

    def test_shifts_below_worst_case(self, signoff):
        flow, net, lib, result = signoff
        shifts = flow.instance_delta_vth(net, lib)
        wc = flow.worst_case_delta_vth(lib)
        assert max(shifts.values()) <= wc + 1e-9
        assert np.mean(list(shifts.values())) < wc

    def test_longer_lifetime_more_aging(self, signoff):
        flow, net, lib, _ = signoff
        short = AgingFlow(flow.characterizer, lifetime_s=3.15e7)
        long = AgingFlow(flow.characterizer, lifetime_s=3.15e8)
        s_short = short.instance_delta_vth(net, lib)
        s_long = long.instance_delta_vth(net, lib)
        name = next(iter(s_short))
        assert s_long[name] > s_short[name]
