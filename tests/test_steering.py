"""Surrogate-steered adaptive campaigns (docs/steering.md).

Covers the scheduler's adaptive seams (``on_result`` / ``available`` /
``exhausted``), the static unit layout of :class:`SteeredUnitSource`,
and the campaign-level contracts: early stop saves trials, the steered
estimate agrees with the uniform baseline, and the executed record
stream is byte-identical across jobs, caching, and resume.
"""

import hashlib
import json
from types import SimpleNamespace

import pytest

from repro.arch import (
    FaultInjector,
    Outcome,
    SteeredUnitSource,
    SteeringConfig,
)
from repro.arch import programs as P
from repro.runtime import CampaignRunner, ChunkSource, ResultCache
from repro.runtime.stats import wilson_halfwidth


def _digest(result):
    payload = json.dumps(
        [
            (r.program, r.cycle, r.element, r.bit, r.outcome.value,
             r.pc_at_injection, r.opcode_at_injection)
            for r in result.records
        ],
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _failures(records):
    bad = (Outcome.SDC, Outcome.CRASH, Outcome.HANG)
    return sum(r.outcome in bad for r in records)


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(P.checksum(12))


@pytest.fixture(scope="module")
def steered(injector):
    return injector.run_steered_campaign(budget=2048, seed=3)


@pytest.fixture(scope="module")
def uniform(injector):
    return injector.run_steered_campaign(
        budget=2048, seed=3, config=SteeringConfig(mode="uniform")
    )


def _double_chunk(chunk):
    return [2 * t for t in range(chunk.start, chunk.stop)]


class _RecordingSource(ChunkSource):
    """Static chunk source plus an on_result recorder."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def on_result(self, i, results):
        self.calls.append((i, tuple(results)))


class TestSchedulerSeams:
    def test_on_result_fires_once_per_unit_in_commit_order(self):
        source = _RecordingSource(0, 40, 8)
        out = CampaignRunner(jobs=1).run_units(_double_chunk, source)
        assert [i for i, _ in source.calls] == list(range(5))
        assert [list(r) for _, r in source.calls] == out

    def test_on_result_replays_identically_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = _RecordingSource(0, 40, 8)
        CampaignRunner(jobs=1, cache=cache).run_units(_double_chunk, first)
        replay = _RecordingSource(0, 40, 8)
        runner = CampaignRunner(jobs=1, cache=cache)
        runner.run_units(_double_chunk, replay)
        assert runner.stats.units_cached == 5
        assert replay.calls == first.calls

    def test_static_sources_run_unchanged(self):
        # A plain source has no adaptive hooks; the seams must not
        # change its behaviour or its results.
        source = ChunkSource(0, 40, 8)
        out = CampaignRunner(jobs=1).run_units(_double_chunk, source)
        assert out == [[2 * t for t in range(s, min(s + 8, 40))]
                       for s in range(0, 40, 8)]

    def test_available_gates_admission(self):
        class Gated(_RecordingSource):
            def available(self):
                # Unit 1 exists only after unit 0 commits.
                return len(self) if self.calls else 1

        source = Gated(0, 24, 8)
        out = CampaignRunner(jobs=1).run_units(_double_chunk, source)
        assert len(out) == 3 and all(o is not None for o in out)

    def test_exhausted_stops_admission_early(self):
        # ``exhausted`` ends the campaign once nothing new may be
        # admitted; it pairs with ``available`` (alone it cannot recall
        # units the window already admitted).
        class Stopping(_RecordingSource):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.generated = 1

            def available(self):
                return self.generated

            def on_result(self, i, results):
                super().on_result(i, results)
                if not self.exhausted:
                    self.generated = min(self.generated + 1, len(self))

            @property
            def exhausted(self):
                return len(self.calls) >= 2

        source = Stopping(0, 40, 8)
        out = CampaignRunner(jobs=1).run_units(_double_chunk, source)
        # Units past the stop point are never admitted -> None.
        assert len(source.calls) == 2
        assert out[2:] == [None, None, None]

    def test_stalled_source_raises(self):
        class Stalled(ChunkSource):
            def available(self):
                return 1

            exhausted = False

        with pytest.raises(RuntimeError, match="stalled"):
            CampaignRunner(jobs=1).run_units(_double_chunk, Stalled(0, 24, 8))


class TestSteeredUnitSource:
    CFG = dict(surrogate="none", round_trials=128, chunk_size=32)

    def _source(self, seed=0, budget=320, **overrides):
        cfg = SteeringConfig(**{**self.CFG, **overrides})
        return SteeredUnitSource(
            seed=seed, budget=budget, elements=["a", "b"],
            golden_cycles=100, config=cfg,
        )

    def test_layout_is_static_and_covers_budget(self):
        source = self._source()
        assert sum(source.weight(i) for i in range(len(source))) == 320
        assert source.total_weight == 320
        keys = [source.key(i) for i in range(len(source))]
        assert len(set(keys)) == len(keys)
        # Layout is a pure function of the config, not of any outcome.
        assert keys == [self._source().key(i) for i in range(len(source))]

    def test_round_zero_generation_is_seed_deterministic(self):
        a, b = self._source(seed=5), self._source(seed=5)
        assert [a.item(i).coords for i in range(a.available())] == \
               [b.item(i).coords for i in range(b.available())]
        other = self._source(seed=6)
        assert a.item(0).coords != other.item(0).coords

    def test_coords_stay_in_bounds(self):
        source = self._source()
        for i in range(source.available()):
            for cycle, element, bit in source.item(i).coords:
                assert 0 <= cycle < 100
                assert element in ("a", "b")

    def test_budget_must_cover_bootstrap_round(self):
        with pytest.raises(ValueError, match="bootstrap"):
            self._source(budget=4)

    def test_steered_surrogate_requires_features(self):
        with pytest.raises(ValueError, match="feature"):
            SteeredUnitSource(
                seed=0, budget=320, elements=["a"], golden_cycles=10,
                config=SteeringConfig(),
            )

    def test_config_validation(self):
        for bad in (
            dict(target_ci=0.0), dict(target_ci=0.6),
            dict(confidence=1.0), dict(round_trials=0),
            dict(chunk_size=0), dict(phase_bins=0),
            dict(explore=1.5), dict(surrogate="mlp"),
            dict(refit_chunks=0), dict(prior_strength=-1),
            dict(mode="greedy"),
        ):
            with pytest.raises(ValueError):
                SteeringConfig(**bad).validate()

    def test_locate_inverts_generation_bounds_when_bins_uneven(self):
        # Regression: golden_cycles=10, phase_bins=4 gives the floor
        # partition [0, 2, 5, 7, 10].  The old ``cycle * bins //
        # golden_cycles`` locate disagreed with it (cycles 2 and 7
        # tallied into strata 0/2 instead of 1/3), biasing the
        # post-stratified estimate and crashing the round-0 seal.
        cfg = SteeringConfig(surrogate="none", round_trials=16,
                             chunk_size=8, early_stop=False)
        source = SteeredUnitSource(
            seed=5, budget=40, elements=["a", "b"], golden_cycles=10,
            config=cfg,
        )
        assert source._phase_bounds == [0, 2, 5, 7, 10]
        for cycle in range(10):
            for e, element in enumerate(source.elements):
                s = source._locate(cycle, element)
                se, b = source._strata[s]
                assert se == e
                lo, hi = source._phase_bounds[b], source._phase_bounds[b + 1]
                assert lo <= cycle < hi

    def test_seal_survives_uneven_bins(self):
        # End-to-end shape of the crash in the regression above: commit
        # a full bootstrap round and seal it.  With mis-tallied strata
        # the stratified estimator raised "every stratum with positive
        # weight needs >= 1 observation".
        cfg = SteeringConfig(surrogate="none", round_trials=16,
                             chunk_size=8, early_stop=False)
        source = SteeredUnitSource(
            seed=5, budget=40, elements=["a", "b"], golden_cycles=10,
            config=cfg,
        )
        first_round_units = source.available()
        for i in range(first_round_units):
            records = [
                SimpleNamespace(cycle=c, element=e, outcome=Outcome.MASKED)
                for c, e, _ in source.item(i).coords
            ]
            source.on_result(i, records)
        assert source.trajectory and source.trajectory[0]["trials"] == 16
        assert sum(source._n_s) == 16
        # Every stratum got its round-0 minimum of one trial, tallied
        # into the stratum it was generated for.
        assert all(n >= 1 for n in source._n_s)

    def test_on_result_seals_rounds_and_tallies(self):
        # early_stop off: an all-masked round would otherwise satisfy
        # the CI target immediately and never generate round 1.
        source = self._source(budget=256, early_stop=False)
        first_round_units = source.available()
        for i in range(first_round_units):
            records = [
                SimpleNamespace(cycle=c, element=e, outcome=Outcome.MASKED)
                for c, e, _ in source.item(i).coords
            ]
            source.on_result(i, records)
        assert source.trajectory and source.trajectory[0]["trials"] == 128
        # All-masked tallies: estimate 0, new round generated.
        assert source.trajectory[0]["estimate"] == 0.0
        assert source.available() > first_round_units


class TestSteeredCampaign:
    def test_early_stop_saves_trials(self, steered):
        s = steered.steering
        assert s["stopped_early"] and s["stop_reason"] == "target"
        assert s["trials_executed"] < 2048
        assert s["trials_saved"] == 2048 - s["trials_executed"]
        assert len(steered.records) == s["trials_executed"]
        assert s["ci_halfwidth"] <= s["target_ci"]

    def test_trajectory_tightens_to_target(self, steered):
        s = steered.steering
        trials = [t["trials"] for t in s["trajectory"]]
        assert trials == sorted(trials) and len(set(trials)) == len(trials)
        assert s["trajectory"][-1]["halfwidth"] <= s["target_ci"]
        assert len(s["trajectory"]) == s["rounds"]
        assert s["refits"] >= 1

    def test_steered_agrees_with_uniform_baseline(self, steered, uniform):
        # Two 95% CIs for the same AVF: their centres must lie within
        # the sum of the half-widths (the intervals overlap).
        delta = abs(
            steered.steering["avf_estimate"] - uniform.steering["avf_estimate"]
        )
        assert delta <= (steered.steering["ci_halfwidth"]
                         + uniform.steering["ci_halfwidth"])

    def test_uniform_mode_reports_wilson(self, uniform):
        s = uniform.steering
        n = s["trials_executed"]
        failures = _failures(uniform.records)
        assert s["avf_estimate"] == pytest.approx(failures / n)
        assert s["ci_halfwidth"] == pytest.approx(
            wilson_halfwidth(failures, n, s["confidence"])
        )
        lo, hi = uniform.uniform_interval()
        assert lo <= s["avf_estimate"] <= hi

    def test_no_early_stop_exhausts_budget(self, injector):
        result = injector.run_steered_campaign(
            budget=256, seed=3, config=SteeringConfig(early_stop=False)
        )
        s = result.steering
        assert s["trials_executed"] == 256 and s["trials_saved"] == 0
        assert s["stop_reason"] == "budget" and not s["stopped_early"]

    def test_byte_identical_across_jobs_cache_and_resume(self, injector,
                                                         tmp_path):
        config = SteeringConfig(target_ci=0.05)

        def run(**kwargs):
            return injector.run_steered_campaign(
                budget=512, seed=7, config=config, **kwargs
            )

        inline = run(jobs=1)
        pooled = run(jobs=2)
        cache = ResultCache(tmp_path / "cache")
        cached = run(jobs=1, cache=cache)
        resumed = run(jobs=1, cache=cache, resume=True)
        stats = injector.last_run_stats

        reference = _digest(inline)
        for other in (pooled, cached, resumed):
            assert _digest(other) == reference
            assert other.steering == inline.steering
        assert stats.journaled_units > 0
        assert stats.executed_trials == 0  # resume replays, never re-runs

    def test_cache_is_budget_scoped(self, injector, tmp_path):
        # Regression: the run-level cache key omitted the budget, but
        # round layout depends on it, so budget=300 and budget=450 both
        # produced unit key ("steer", seed, 2, 0, 32) for chunks with
        # *different* coordinates — a shared cache dir silently replayed
        # records for the wrong coordinates.
        cache = ResultCache(tmp_path / "cache")
        config = SteeringConfig(surrogate="none", early_stop=False)

        def run(budget, **kwargs):
            return injector.run_steered_campaign(
                budget=budget, seed=7, config=config, **kwargs
            )

        run(300, cache=cache)
        shared = run(450, cache=cache)
        fresh = run(450)
        assert _digest(shared) == _digest(fresh)
        assert shared.steering == fresh.steering

    def test_different_seeds_differ(self, injector, steered):
        other = injector.run_steered_campaign(budget=2048, seed=4)
        assert _digest(other) != _digest(steered)
