"""Fault tolerance of the campaign runtime: retries, timeouts, respawns,
chaos injection, and checkpoint/resume (repro.runtime.{policy,chaos,
manifest} + the runner's recovery paths)."""

import pickle

import pytest

from repro import obs
from repro.runtime import (
    CampaignManifest,
    CampaignRunner,
    ChaosError,
    ChaosSpec,
    ChaosWorker,
    FAIL_FAST_POLICY,
    FaultPolicy,
    ProgressLog,
    ResultCache,
    UnitTimeoutError,
)

from tests.test_runtime import _draw_chunk


#: Fast-retry policy for tests: no real backoff waiting.
FAST = dict(backoff_base_s=0.001, poll_interval_s=0.02)


def _reference(n_trials=80, seed=5, chunk_size=7):
    return CampaignRunner(jobs=1, chunk_size=chunk_size).run_trials(
        _draw_chunk, n_trials, seed=seed
    )


class _Unpicklable:
    def __reduce__(self):
        raise pickle.PicklingError("by design")


def _is_unpicklable(item):
    return 1 if isinstance(item, _Unpicklable) else 0


class _ExplodingState:
    """Worker whose pickling probe hits a *real* bug, not a pickling error."""

    def __getstate__(self):
        raise RuntimeError("real workload bug, not a pickling limitation")

    def __call__(self, chunk):
        return [float(i) for i in chunk.indices]


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(unit_timeout_s=0)
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError):
            FaultPolicy(max_pool_respawns=-1)

    def test_backoff_is_exponential_with_bounded_jitter(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_jitter=0.1)
        for attempt in (1, 2, 3):
            nominal = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff_s(unit_index=4, attempt=attempt)
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_jitter_is_deterministic_per_unit_and_attempt(self):
        policy = FaultPolicy()
        assert policy.jitter_factor(3, 1) == policy.jitter_factor(3, 1)
        # distinct units / attempts draw from distinct child streams
        draws = {policy.jitter_factor(i, a) for i in range(5) for a in (1, 2)}
        assert len(draws) == 10

    def test_backoff_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            FaultPolicy().backoff_s(0, 0)


class TestSerialFallbackNarrowing:
    """Regression: only pickling errors may trigger the silent serial
    fallback; real workload errors surfaced by the probe must re-raise."""

    def test_nonpicklable_falls_back_and_warns(self):
        runner = CampaignRunner(jobs=4)
        offsets = iter(range(1000))  # closure over a generator: not picklable
        with obs.collecting():
            results = runner.run_trials(
                lambda chunk: [next(offsets) * 0 + i for i in chunk.indices],
                64, seed=0,
            )
            counters = obs.metrics_snapshot()["counters"]
        assert results == list(range(64))
        assert runner.stats.fallback_reason is not None
        assert runner.stats.jobs_used == 1
        assert counters["runtime.fault.serial_fallback"] == 1

    def test_real_workload_error_in_probe_is_reraised(self):
        runner = CampaignRunner(jobs=4)
        with pytest.raises(RuntimeError, match="real workload bug"):
            runner.run_trials(_ExplodingState(), 64, seed=0)
        assert runner.stats.fallback_reason is None

    def test_pickling_error_subclass_still_falls_back(self):
        runner = CampaignRunner(jobs=4)
        items = [_Unpicklable(), _Unpicklable(), _Unpicklable()]
        results = runner.map(_is_unpicklable, items,
                             item_keys=[("u", i) for i in range(3)])
        assert results == [1, 1, 1]
        assert "PicklingError" in runner.stats.fallback_reason


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(raise_rate=0.7, exit_rate=0.5)
        with pytest.raises(ValueError):
            ChaosSpec(raise_rate=-0.1)

    def test_fate_is_deterministic_and_covers_kinds(self):
        spec = ChaosSpec(raise_rate=0.25, exit_rate=0.25, hang_rate=0.25,
                         slow_rate=0.25, seed=0)
        fates = [spec.fate(("unit", i)) for i in range(64)]
        assert fates == [spec.fate(("unit", i)) for i in range(64)]
        assert set(fates) == {"raise", "exit", "hang", "slow"}

    def test_zero_rates_touch_nothing(self):
        spec = ChaosSpec()
        assert all(spec.fate(i) is None for i in range(50))

    def test_chaos_stops_after_fail_attempts(self, tmp_path):
        spec = ChaosSpec(raise_rate=1.0, fail_attempts=2, seed=1)
        worker = ChaosWorker(lambda unit: unit * 10, spec, tmp_path)
        for _ in range(2):
            with pytest.raises(ChaosError):
                worker(3)
        assert worker(3) == 30  # third attempt goes through


class TestRetries:
    def test_serial_retries_recover_and_match_reference(self, tmp_path):
        reference = _reference()
        spec = ChaosSpec(raise_rate=0.5, seed=2)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        runner = CampaignRunner(
            jobs=1, chunk_size=7, policy=FaultPolicy(max_retries=2, **FAST)
        )
        with obs.collecting():
            results = runner.run_trials(worker, 80, seed=5)
            counters = obs.metrics_snapshot()["counters"]
        assert results == reference
        assert runner.stats.retries > 0
        assert counters["runtime.fault.retries"] == runner.stats.retries

    def test_pool_retries_recover_and_match_reference(self, tmp_path):
        reference = _reference()
        spec = ChaosSpec(raise_rate=0.5, seed=2)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        runner = CampaignRunner(
            jobs=4, chunk_size=7, policy=FaultPolicy(max_retries=2, **FAST)
        )
        assert runner.run_trials(worker, 80, seed=5) == reference
        assert runner.stats.retries > 0

    def test_exhausted_retries_reraise_original_error(self, tmp_path):
        spec = ChaosSpec(raise_rate=1.0, fail_attempts=99, seed=0)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        runner = CampaignRunner(
            jobs=1, chunk_size=7, policy=FaultPolicy(max_retries=1, **FAST)
        )
        with pytest.raises(ChaosError):
            runner.run_trials(worker, 40, seed=5)
        assert runner.stats.retries == 1  # one retry, then give up

    def test_fail_fast_policy_never_retries(self, tmp_path):
        spec = ChaosSpec(raise_rate=1.0, seed=0)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        runner = CampaignRunner(jobs=1, chunk_size=7, policy=FAIL_FAST_POLICY)
        with pytest.raises(ChaosError):
            runner.run_trials(worker, 40, seed=5)
        assert runner.stats.retries == 0


class TestTimeouts:
    def test_hung_unit_is_killed_and_retried(self, tmp_path):
        reference = _reference(n_trials=42, chunk_size=7)
        spec = ChaosSpec(hang_rate=0.3, hang_s=10.0, seed=3)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        policy = FaultPolicy(unit_timeout_s=0.5, max_retries=2, **FAST)
        runner = CampaignRunner(jobs=3, chunk_size=7, policy=policy)
        with obs.collecting():
            results = runner.run_trials(worker, 42, seed=5)
            counters = obs.metrics_snapshot()["counters"]
        assert results == reference
        assert runner.stats.timeouts > 0
        assert runner.stats.pool_respawns > 0
        assert counters["runtime.fault.timeouts"] == runner.stats.timeouts

    def test_timeout_exhaustion_raises_unit_timeout_error(self, tmp_path):
        spec = ChaosSpec(hang_rate=1.0, hang_s=10.0, fail_attempts=99, seed=0)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        policy = FaultPolicy(unit_timeout_s=0.3, max_retries=0, **FAST)
        runner = CampaignRunner(jobs=2, chunk_size=7, policy=policy)
        with pytest.raises(UnitTimeoutError):
            runner.run_trials(worker, 14, seed=5)


class TestBrokenPoolRecovery:
    def test_worker_death_respawns_pool_and_matches_reference(self, tmp_path):
        reference = _reference()
        spec = ChaosSpec(exit_rate=0.3, seed=4)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        policy = FaultPolicy(max_retries=4, max_pool_respawns=8, **FAST)
        runner = CampaignRunner(jobs=4, chunk_size=7, policy=policy)
        assert runner.run_trials(worker, 80, seed=5) == reference
        assert runner.stats.pool_respawns > 0
        assert not runner.stats.degraded_serial

    def test_respawn_cap_degrades_to_serial(self, tmp_path):
        reference = _reference()
        spec = ChaosSpec(exit_rate=0.3, seed=4)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path)
        policy = FaultPolicy(max_retries=6, max_pool_respawns=0, **FAST)
        runner = CampaignRunner(jobs=4, chunk_size=7, policy=policy)
        with obs.collecting():
            results = runner.run_trials(worker, 80, seed=5)
            counters = obs.metrics_snapshot()["counters"]
        assert results == reference
        assert runner.stats.degraded_serial
        assert counters["runtime.fault.degraded_serial"] == 1


class _InterruptAfter:
    """Progress callback that simulates SIGINT after N events."""

    def __init__(self, n):
        self.n = n
        self.seen = 0

    def __call__(self, event):
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


class TestResume:
    """The acceptance contract: interrupted + resumed == uninterrupted,
    bit for bit, serially and in parallel."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path, jobs):
        reference = _reference(n_trials=90, chunk_size=9)
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                jobs=jobs, chunk_size=9, cache=cache,
                progress=_InterruptAfter(3),
            ).run_trials(_draw_chunk, 90, seed=5)
        resumed = CampaignRunner(jobs=jobs, chunk_size=9, cache=cache,
                                 resume=True)
        assert resumed.run_trials(_draw_chunk, 90, seed=5) == reference
        assert resumed.stats.resumed
        assert resumed.stats.journaled_units > 0
        assert (resumed.stats.units_executed + resumed.stats.units_cached
                == resumed.stats.units_total)

    def test_chaos_plus_interrupt_plus_resume_is_bit_identical(self, tmp_path):
        reference = _reference(n_trials=90, chunk_size=9)
        cache = ResultCache(tmp_path / "cache")
        spec = ChaosSpec(raise_rate=0.3, seed=6)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                jobs=4, chunk_size=9, cache=cache,
                policy=FaultPolicy(max_retries=3, **FAST),
                progress=_InterruptAfter(4),
            ).run_trials(worker, 90, seed=5)
        resumed = CampaignRunner(jobs=4, chunk_size=9, cache=cache,
                                 policy=FaultPolicy(max_retries=3, **FAST),
                                 resume=True)
        assert resumed.run_trials(worker, 90, seed=5) == reference

    def test_resume_requires_cache(self):
        with pytest.raises(ValueError, match="resume requires"):
            CampaignRunner(resume=True)

    def test_resume_of_fresh_campaign_just_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(jobs=1, chunk_size=7, cache=cache, resume=True)
        assert runner.run_trials(_draw_chunk, 21, seed=5) == _reference(
            n_trials=21
        )
        assert runner.stats.journaled_units == 0

    def test_interrupt_is_journaled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                jobs=1, chunk_size=7, cache=cache, progress=_InterruptAfter(2),
            ).run_trials(_draw_chunk, 70, seed=5)
        manifests = list((tmp_path / "cache" / "manifests").glob("*.jsonl"))
        assert len(manifests) == 1
        assert '"interrupt"' in manifests[0].read_text()


class TestCampaignManifest:
    def test_replay_round_trip(self, tmp_path):
        manifest = CampaignManifest.open(tmp_path, "deadbeef", 3)
        manifest.mark("u1", attempts=0)
        manifest.mark("u2", attempts=2)
        manifest.close()
        replayed = CampaignManifest.open(tmp_path, "deadbeef", 3)
        assert replayed.completed == {"u1": 0, "u2": 2}
        assert not replayed.complete
        assert replayed.journaled(["u1", "u2", "u3"]) == 2

    def test_interrupt_marker_survives_replay(self, tmp_path):
        manifest = CampaignManifest.open(tmp_path, "feed", 2)
        manifest.mark("u1")
        manifest.note_interrupt()
        manifest.close()
        replayed = CampaignManifest.open(tmp_path, "feed", 2)
        assert replayed.interrupted
        replayed.mark("u2")
        assert not replayed.interrupted
        assert replayed.complete

    def test_torn_tail_is_tolerated(self, tmp_path):
        manifest = CampaignManifest.open(tmp_path, "cafe", 4)
        manifest.mark("u1")
        manifest.close()
        with open(manifest.path, "a") as fh:
            fh.write('{"type": "unit", "digest": "u2"')  # torn: no newline/close
        replayed = CampaignManifest.open(tmp_path, "cafe", 4)
        assert replayed.completed == {"u1": 0}

    def test_mismatched_header_rotates(self, tmp_path):
        manifest = CampaignManifest.open(tmp_path, "aaaa", 4)
        manifest.mark("u1")
        manifest.close()
        # Same file name, different declared unit count: stale journal.
        reopened = CampaignManifest.open(tmp_path, "aaaa", 9)
        assert reopened.completed == {}
        assert manifest.path.with_suffix(".jsonl.stale").exists()
