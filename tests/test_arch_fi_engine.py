"""Three-way FI engine equivalence: reference vs forked vs batched.

The reference engine re-executes every trial from cycle 0 and is kept
as the oracle; the forked engine restores golden-state snapshots,
replays the gap, and early-exits on reconvergence; the batched engine
runs whole chunks of trials in lockstep down the golden trace as numpy
lanes, falling out to the block-compiled interpreter on divergence.
Every test here pins the contract that all engines produce
bit-identical :class:`InjectionRecord`\\ s — outcomes, injection
context, everything.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.arch import FaultInjector, Outcome
from repro.arch import programs as P
from repro.arch.cpu import CPU

ELEMENTS = [f"reg{i}" for i in range(16)] + ["pc", "ir"]


def _pair(program, **kwargs):
    """(reference, forked) injectors with identical configuration."""
    return (
        FaultInjector(program, engine="reference", **kwargs),
        FaultInjector(program, engine="forked", **kwargs),
    )


def _trio(program, **kwargs):
    """(reference, forked, batched) injectors, identically configured."""
    return _pair(program, **kwargs) + (
        FaultInjector(program, engine="batched", **kwargs),
    )


@pytest.fixture(scope="module")
def checksum_pair():
    return _pair(P.checksum(24))


class TestEngineSelection:
    def test_auto_resolves_to_batched(self):
        inj = FaultInjector(P.fibonacci(8))
        assert inj.engine == "batched"
        assert inj.requested_engine == "auto"
        assert FaultInjector(P.fibonacci(8), engine="auto").engine == "batched"
        explicit = FaultInjector(P.fibonacci(8), engine="forked")
        assert explicit.engine == explicit.requested_engine == "forked"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FaultInjector(P.fibonacci(8), engine="turbo")

    def test_nonpositive_snapshot_interval_rejected(self):
        with pytest.raises(ValueError, match="snapshot_interval"):
            FaultInjector(P.fibonacci(8), snapshot_interval=0)

    def test_engine_namespaces_the_cache_fingerprint(self):
        ref, fork, batched = _trio(P.fibonacci(8))
        assert ref.fingerprint()["engine"] == "reference"
        assert fork.fingerprint()["engine"] == "forked"
        assert batched.fingerprint()["engine"] == "batched"
        stripped = []
        for inj in (ref, fork, batched):
            fp = dict(inj.fingerprint())
            del fp["engine"]
            stripped.append(fp)
        assert stripped[0] == stripped[1] == stripped[2]

    def test_snapshot_interval_not_fingerprinted(self):
        # Records are interval-independent by contract, so the interval
        # must not split the cache namespace.
        a = FaultInjector(P.fibonacci(8), snapshot_interval=1)
        b = FaultInjector(P.fibonacci(8), snapshot_interval=64)
        assert a.fingerprint() == b.fingerprint()


class TestCampaignEquivalence:
    @pytest.mark.parametrize("program", P.all_programs(), ids=lambda p: p.name)
    def test_bit_identical_records_all_seed_programs(self, program):
        ref, fork, batched = _trio(program)
        r = ref.run_campaign(n_trials=60, seed=7)
        f = fork.run_campaign(n_trials=60, seed=7)
        b = batched.run_campaign(n_trials=60, seed=7)
        assert r.records == f.records == b.records
        assert r.golden_output == f.golden_output == b.golden_output
        assert r.golden_cycles == f.golden_cycles == b.golden_cycles

    def test_identical_under_jobs_and_cache(self, tmp_path):
        from repro.runtime import ResultCache

        ref, fork = _pair(P.checksum(16))
        serial = ref.run_campaign(n_trials=48, seed=3)
        cache = ResultCache(tmp_path / "cache")
        parallel = fork.run_campaign(n_trials=48, seed=3, jobs=2, cache=cache)
        assert serial.records == parallel.records
        # Second run replays from the cache: still identical.
        cached = fork.run_campaign(n_trials=48, seed=3, jobs=1, cache=cache)
        assert cached.records == serial.records
        assert fork.last_run_stats.cached_trials == 48

    def test_exhaustive_element_campaigns_match(self):
        ref, fork = _pair(P.dot_product(8))
        for element in ("reg2", "pc", "ir"):
            r = ref.exhaustive_element_campaign(element, n_trials=40, seed=1)
            f = fork.exhaustive_element_campaign(element, n_trials=40, seed=1)
            assert r.records == f.records


class TestTrialEquivalence:
    @pytest.mark.parametrize("element", ["reg0", "reg1", "reg5", "reg15", "pc", "ir"])
    def test_all_element_kinds_over_cycle_grid(self, checksum_pair, element):
        ref, fork = checksum_pair
        step = max(1, ref.golden_cycles // 11)
        for cycle in range(0, ref.golden_cycles, step):
            for bit in (0, 7, 19, 31):
                assert ref.inject_one(cycle, element, bit) == fork.inject_one(
                    cycle, element, bit
                )

    @pytest.mark.parametrize("interval", [1, 7, 10**6])
    def test_snapshot_interval_edge_cases(self, interval):
        # interval 1 checkpoints every cycle; 10**6 exceeds golden_cycles,
        # leaving only the cycle-0 snapshot (degenerates to near-full
        # re-execution) — records must not change.
        prog = P.bubble_sort(6)
        ref = FaultInjector(prog, engine="reference")
        fork = FaultInjector(prog, engine="forked", snapshot_interval=interval)
        for cycle in (0, 1, ref.golden_cycles // 2, ref.golden_cycles - 1):
            for element in ("reg3", "pc", "ir"):
                assert ref.inject_one(cycle, element, 2) == fork.inject_one(
                    cycle, element, 2
                )

    def test_fault_at_first_and_last_cycle(self, checksum_pair):
        ref, fork = checksum_pair
        for cycle in (0, ref.golden_cycles - 1):
            for element in ("reg1", "pc", "ir"):
                for bit in range(0, 32, 5):
                    assert ref.inject_one(cycle, element, bit) == fork.inject_one(
                        cycle, element, bit
                    )

    def test_fault_past_the_golden_run_never_fires(self, checksum_pair):
        ref, fork = checksum_pair
        for cycle in (ref.golden_cycles, ref.golden_cycles + 100):
            r = ref.inject_one(cycle, "reg4", 9)
            assert r.outcome is Outcome.MASKED
            assert r == fork.inject_one(cycle, "reg4", 9)


_HYPO_PAIR = _pair(P.checksum(24))


@given(
    cycle=st.integers(min_value=0, max_value=_HYPO_PAIR[0].golden_cycles + 3),
    element=st.sampled_from(ELEMENTS),
    bit=st.integers(min_value=0, max_value=31),
)
@settings(max_examples=150, deadline=None)
def test_property_any_injection_coordinates_match(cycle, element, bit):
    ref, fork = _HYPO_PAIR
    assert ref.inject_one(cycle, element, bit) == fork.inject_one(cycle, element, bit)


_HYPO_TRIOS = [_trio(p) for p in P.all_programs()]
_MAX_GOLDEN = max(t[0].golden_cycles for t in _HYPO_TRIOS)


@given(
    prog_index=st.integers(min_value=0, max_value=len(_HYPO_TRIOS) - 1),
    coords=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=_MAX_GOLDEN + 3),
            st.sampled_from(ELEMENTS),
            st.integers(min_value=0, max_value=31),
        ),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_three_engines_match_on_every_program(prog_index, coords):
    """Random coordinate batches produce bit-identical records on all
    three engines, for every seed program (batched runs them as one
    ``inject_many`` call, exercising the lane/offtrace partition)."""
    ref, fork, batched = _HYPO_TRIOS[prog_index]
    expected = [ref.inject_one(*c) for c in coords]
    assert [fork.inject_one(*c) for c in coords] == expected
    assert batched.inject_many(coords) == expected


class TestEngineInternals:
    def test_run_span_matches_traced_run(self):
        for prog in P.all_programs():
            traced = CPU(prog).run()
            cpu = CPU(prog)
            cpu.run_span()
            assert cpu.halted
            assert cpu.cycles == traced.cycles
            assert list(cpu.registers) == traced.registers
            assert cpu.memory == traced.memory

    def test_run_span_stops_at_cycle(self):
        prog = P.fibonacci(10)
        cpu = CPU(prog)
        cpu.run_span(5)
        assert cpu.cycles == 5 and not cpu.halted
        stepped = CPU(prog)
        for _ in range(5):
            stepped.step()
        assert cpu.snapshot() == stepped.snapshot()

    def test_reset_clears_pending_ir_fault(self):
        # A pending IR fault that is never consumed must not leak into
        # the next run of a reused CPU object.
        prog = P.checksum(8)
        golden = CPU(prog).run().output(prog.output_range)
        cpu = CPU(prog)
        cpu.flip_bit("ir", 30)
        assert cpu._ir_fault != 0
        result = cpu.run()  # run() resets first: golden execution
        assert result.output(prog.output_range) == golden

    def test_snapshot_restore_round_trip(self):
        prog = P.vector_add(8)
        cpu = CPU(prog)
        for _ in range(10):
            cpu.step()
        snap = cpu.snapshot()
        cpu.run_span()  # run to completion, mutating state
        cpu.restore(snap)
        assert cpu.state_matches(snap)
        assert cpu.cycles == 10

    def test_forked_engine_emits_metrics(self):
        with obs.collecting():
            fork = FaultInjector(P.checksum(24), engine="forked")
            fork.run_campaign(n_trials=80, seed=0)
            counters = obs.metrics_snapshot()["counters"]
        assert counters["arch.fi.engine.snapshots"] > 0
        assert counters["arch.fi.engine.early_exits"] > 0
        assert counters["arch.fi.engine.cycles_pruned"] > 0
        assert counters["arch.fi.engine.cycles_skipped"] > 0

    def test_early_exit_prunes_most_masked_work(self):
        # Dead-register flips reconverge at the first boundary: the
        # pruned cycles must dominate the replayed ones on a
        # masked-heavy campaign.
        with obs.collecting():
            fork = FaultInjector(P.checksum(24), engine="forked")
            fork.run_campaign(n_trials=120, seed=1)
            counters = obs.metrics_snapshot()["counters"]
        assert (
            counters["arch.fi.engine.cycles_pruned"]
            > counters["arch.fi.engine.cycles_replayed"]
        )


def _find_divergent_coordinate(program):
    """A (cycle, element, bit) whose trial leaves the golden PC trace."""
    ref = FaultInjector(program, engine="reference")
    batched = FaultInjector(program, engine="batched")
    for cycle in range(0, ref.golden_cycles, 3):
        for element in ("reg1", "reg2", "reg3", "reg4"):
            for bit in (0, 3):
                with obs.collecting():
                    batched.inject_many([(cycle, element, bit)])
                    counters = obs.metrics_snapshot()["counters"]
                if counters.get("arch.fi.engine.batch.divergences", 0):
                    return cycle, element, bit
    raise AssertionError("no divergent coordinate found")


class TestBatchedEngine:
    def test_divergence_falls_back_and_classifies_identically(self):
        # A trial whose branch direction leaves the golden trace must
        # drop out of the lockstep sweep and still classify exactly as
        # the oracle engines do.
        program = P.bubble_sort(6)
        coord = _find_divergent_coordinate(program)
        ref, fork, batched = _trio(program)
        expected = ref.inject_one(*coord)
        assert fork.inject_one(*coord) == expected
        with obs.collecting():
            # inject_many forces the batch path even for one trial
            assert batched.inject_many([coord]) == [expected]
            counters = obs.metrics_snapshot()["counters"]
        assert counters["arch.fi.engine.batch.divergences"] == 1

    def test_single_trial_api_matches_batch_api(self):
        # inject_one on the batched engine serves per-trial callers via
        # the scalar replay path; records must match the batch path.
        batched = FaultInjector(P.dot_product(8), engine="batched")
        coords = [(c, el, b) for c in (0, 5, 40) for el in ("reg2", "pc")
                  for b in (1, 30)]
        assert batched.inject_many(coords) == [
            batched.inject_one(*c) for c in coords
        ]

    def test_offtrace_and_out_of_range_partitions(self):
        ref, _, batched = _trio(P.checksum(16))
        n = ref.golden_cycles
        coords = [
            (0, "ir", 7), (n // 2, "pc", 1), (n + 10, "reg3", 4),
            (n // 3, "reg5", 12),
        ]
        with obs.collecting():
            records = batched.inject_many(coords)
            counters = obs.metrics_snapshot()["counters"]
        assert records == [ref.inject_one(*c) for c in coords]
        assert counters["arch.fi.engine.batch.offtrace_trials"] == 2
        assert counters["arch.fi.engine.batch.lanes"] == 1
        assert records[2].outcome is Outcome.MASKED

    def test_batch_occupancy_metrics(self):
        with obs.collecting():
            batched = FaultInjector(P.checksum(24), engine="batched")
            batched.run_campaign(n_trials=100, seed=2)
            counters = obs.metrics_snapshot()["counters"]
        assert counters["arch.fi.engine.batch.groups"] >= 1
        assert counters["arch.fi.engine.batch.lanes"] > 0
        assert counters["arch.fi.engine.batch.vector_cycles"] > 0
        # Occupancy: lane-cycles per vector-cycle is the mean active
        # width; it can never exceed the lane count.
        assert (
            counters["arch.fi.engine.batch.lane_cycles"]
            <= counters["arch.fi.engine.batch.lanes"]
            * counters["arch.fi.engine.batch.vector_cycles"]
        )
        assert counters["arch.fi.engine.early_exits"] > 0

    def test_engine_stats_reports_resolution_and_ladder(self):
        inj = FaultInjector(P.fibonacci(10))  # auto -> batched
        stats = inj.engine_stats()
        assert stats["engine"] == "batched"
        assert stats["requested_engine"] == "auto"
        assert stats["snapshots"] >= 1
        assert stats["snapshot_interval"] >= 1
        assert stats["golden_cycles"] == inj.golden_cycles
        assert stats["max_cycles"] == inj.max_cycles
