"""Forked (checkpoint-and-replay) vs reference FI engine equivalence.

The reference engine re-executes every trial from cycle 0 and is kept
as the oracle; the forked engine restores golden-state snapshots,
replays the gap, and early-exits on reconvergence.  Every test here
pins the contract that both engines produce bit-identical
:class:`InjectionRecord`\\ s — outcomes, injection context, everything.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.arch import FaultInjector, Outcome
from repro.arch import programs as P
from repro.arch.cpu import CPU

ELEMENTS = [f"reg{i}" for i in range(16)] + ["pc", "ir"]


def _pair(program, **kwargs):
    """(reference, forked) injectors with identical configuration."""
    return (
        FaultInjector(program, engine="reference", **kwargs),
        FaultInjector(program, engine="forked", **kwargs),
    )


@pytest.fixture(scope="module")
def checksum_pair():
    return _pair(P.checksum(24))


class TestEngineSelection:
    def test_auto_resolves_to_forked(self):
        assert FaultInjector(P.fibonacci(8)).engine == "forked"
        assert FaultInjector(P.fibonacci(8), engine="auto").engine == "forked"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FaultInjector(P.fibonacci(8), engine="turbo")

    def test_nonpositive_snapshot_interval_rejected(self):
        with pytest.raises(ValueError, match="snapshot_interval"):
            FaultInjector(P.fibonacci(8), snapshot_interval=0)

    def test_engine_namespaces_the_cache_fingerprint(self):
        ref, fork = _pair(P.fibonacci(8))
        assert ref.fingerprint()["engine"] == "reference"
        assert fork.fingerprint()["engine"] == "forked"
        without_engine = dict(ref.fingerprint())
        del without_engine["engine"]
        other = dict(fork.fingerprint())
        del other["engine"]
        assert without_engine == other

    def test_snapshot_interval_not_fingerprinted(self):
        # Records are interval-independent by contract, so the interval
        # must not split the cache namespace.
        a = FaultInjector(P.fibonacci(8), snapshot_interval=1)
        b = FaultInjector(P.fibonacci(8), snapshot_interval=64)
        assert a.fingerprint() == b.fingerprint()


class TestCampaignEquivalence:
    @pytest.mark.parametrize("program", P.all_programs(), ids=lambda p: p.name)
    def test_bit_identical_records_all_seed_programs(self, program):
        ref, fork = _pair(program)
        r = ref.run_campaign(n_trials=60, seed=7)
        f = fork.run_campaign(n_trials=60, seed=7)
        assert r.records == f.records
        assert r.golden_output == f.golden_output
        assert r.golden_cycles == f.golden_cycles

    def test_identical_under_jobs_and_cache(self, tmp_path):
        from repro.runtime import ResultCache

        ref, fork = _pair(P.checksum(16))
        serial = ref.run_campaign(n_trials=48, seed=3)
        cache = ResultCache(tmp_path / "cache")
        parallel = fork.run_campaign(n_trials=48, seed=3, jobs=2, cache=cache)
        assert serial.records == parallel.records
        # Second run replays from the cache: still identical.
        cached = fork.run_campaign(n_trials=48, seed=3, jobs=1, cache=cache)
        assert cached.records == serial.records
        assert fork.last_run_stats.cached_trials == 48

    def test_exhaustive_element_campaigns_match(self):
        ref, fork = _pair(P.dot_product(8))
        for element in ("reg2", "pc", "ir"):
            r = ref.exhaustive_element_campaign(element, n_trials=40, seed=1)
            f = fork.exhaustive_element_campaign(element, n_trials=40, seed=1)
            assert r.records == f.records


class TestTrialEquivalence:
    @pytest.mark.parametrize("element", ["reg0", "reg1", "reg5", "reg15", "pc", "ir"])
    def test_all_element_kinds_over_cycle_grid(self, checksum_pair, element):
        ref, fork = checksum_pair
        step = max(1, ref.golden_cycles // 11)
        for cycle in range(0, ref.golden_cycles, step):
            for bit in (0, 7, 19, 31):
                assert ref.inject_one(cycle, element, bit) == fork.inject_one(
                    cycle, element, bit
                )

    @pytest.mark.parametrize("interval", [1, 7, 10**6])
    def test_snapshot_interval_edge_cases(self, interval):
        # interval 1 checkpoints every cycle; 10**6 exceeds golden_cycles,
        # leaving only the cycle-0 snapshot (degenerates to near-full
        # re-execution) — records must not change.
        prog = P.bubble_sort(6)
        ref = FaultInjector(prog, engine="reference")
        fork = FaultInjector(prog, engine="forked", snapshot_interval=interval)
        for cycle in (0, 1, ref.golden_cycles // 2, ref.golden_cycles - 1):
            for element in ("reg3", "pc", "ir"):
                assert ref.inject_one(cycle, element, 2) == fork.inject_one(
                    cycle, element, 2
                )

    def test_fault_at_first_and_last_cycle(self, checksum_pair):
        ref, fork = checksum_pair
        for cycle in (0, ref.golden_cycles - 1):
            for element in ("reg1", "pc", "ir"):
                for bit in range(0, 32, 5):
                    assert ref.inject_one(cycle, element, bit) == fork.inject_one(
                        cycle, element, bit
                    )

    def test_fault_past_the_golden_run_never_fires(self, checksum_pair):
        ref, fork = checksum_pair
        for cycle in (ref.golden_cycles, ref.golden_cycles + 100):
            r = ref.inject_one(cycle, "reg4", 9)
            assert r.outcome is Outcome.MASKED
            assert r == fork.inject_one(cycle, "reg4", 9)


_HYPO_PAIR = _pair(P.checksum(24))


@given(
    cycle=st.integers(min_value=0, max_value=_HYPO_PAIR[0].golden_cycles + 3),
    element=st.sampled_from(ELEMENTS),
    bit=st.integers(min_value=0, max_value=31),
)
@settings(max_examples=150, deadline=None)
def test_property_any_injection_coordinates_match(cycle, element, bit):
    ref, fork = _HYPO_PAIR
    assert ref.inject_one(cycle, element, bit) == fork.inject_one(cycle, element, bit)


class TestEngineInternals:
    def test_run_span_matches_traced_run(self):
        for prog in P.all_programs():
            traced = CPU(prog).run()
            cpu = CPU(prog)
            cpu.run_span()
            assert cpu.halted
            assert cpu.cycles == traced.cycles
            assert list(cpu.registers) == traced.registers
            assert cpu.memory == traced.memory

    def test_run_span_stops_at_cycle(self):
        prog = P.fibonacci(10)
        cpu = CPU(prog)
        cpu.run_span(5)
        assert cpu.cycles == 5 and not cpu.halted
        stepped = CPU(prog)
        for _ in range(5):
            stepped.step()
        assert cpu.snapshot() == stepped.snapshot()

    def test_reset_clears_pending_ir_fault(self):
        # A pending IR fault that is never consumed must not leak into
        # the next run of a reused CPU object.
        prog = P.checksum(8)
        golden = CPU(prog).run().output(prog.output_range)
        cpu = CPU(prog)
        cpu.flip_bit("ir", 30)
        assert cpu._ir_fault != 0
        result = cpu.run()  # run() resets first: golden execution
        assert result.output(prog.output_range) == golden

    def test_snapshot_restore_round_trip(self):
        prog = P.vector_add(8)
        cpu = CPU(prog)
        for _ in range(10):
            cpu.step()
        snap = cpu.snapshot()
        cpu.run_span()  # run to completion, mutating state
        cpu.restore(snap)
        assert cpu.state_matches(snap)
        assert cpu.cycles == 10

    def test_forked_engine_emits_metrics(self):
        with obs.collecting():
            fork = FaultInjector(P.checksum(24), engine="forked")
            fork.run_campaign(n_trials=80, seed=0)
            counters = obs.metrics_snapshot()["counters"]
        assert counters["arch.fi.engine.snapshots"] > 0
        assert counters["arch.fi.engine.early_exits"] > 0
        assert counters["arch.fi.engine.cycles_pruned"] > 0
        assert counters["arch.fi.engine.cycles_skipped"] > 0

    def test_early_exit_prunes_most_masked_work(self):
        # Dead-register flips reconverge at the first boundary: the
        # pruned cycles must dominate the replayed ones on a
        # masked-heavy campaign.
        with obs.collecting():
            fork = FaultInjector(P.checksum(24), engine="forked")
            fork.run_campaign(n_trials=120, seed=1)
            counters = obs.metrics_snapshot()["counters"]
        assert (
            counters["arch.fi.engine.cycles_pruned"]
            > counters["arch.fi.engine.cycles_replayed"]
        )
