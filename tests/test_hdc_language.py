"""Tests for HDC language identification (ref [13])."""

import numpy as np
import pytest

from repro.hdc.language import (
    ALPHABET,
    LanguageHDCClassifier,
    language_identification_study,
    sample_text,
    synthetic_language,
)


class TestSyntheticLanguage:
    def test_transition_rows_are_distributions(self):
        lang = synthetic_language(0)
        rows = lang["transitions"]
        assert np.allclose(rows.sum(axis=1), 1.0)
        assert np.all(rows >= 0)

    def test_different_seeds_different_statistics(self):
        a = synthetic_language(1)
        b = synthetic_language(2)
        assert not np.allclose(a["transitions"], b["transitions"])

    def test_sample_text_alphabet(self):
        lang = synthetic_language(3)
        text = sample_text(lang, 100, np.random.default_rng(0))
        assert len(text) == 100
        assert set(text) <= set(ALPHABET)

    def test_text_reflects_language_statistics(self):
        lang = synthetic_language(4)
        rng = np.random.default_rng(1)
        text = sample_text(lang, 5000, rng)
        # The most likely successor of 'a' per the model should dominate
        # observed successors of 'a' in a long sample.
        a_idx = ALPHABET.index("a")
        best = ALPHABET[int(np.argmax(lang["transitions"][a_idx]))]
        successors = [text[i + 1] for i, c in enumerate(text[:-1]) if c == "a"]
        if successors:
            values, counts = np.unique(successors, return_counts=True)
            assert values[np.argmax(counts)] == best


class TestLanguageClassifier:
    @pytest.fixture(scope="class")
    def study(self):
        return language_identification_study(
            n_languages=5, n_train=15, n_test=10, text_length=150, dim=2048, seed=0
        )

    def test_high_accuracy(self, study):
        _, _, _, accuracy = study
        assert accuracy > 0.9

    def test_robust_under_errors(self, study):
        clf, texts, labels, _ = study
        noisy = clf.predict(texts, error_rate=0.4, rng=np.random.default_rng(1))
        assert float(np.mean(noisy == labels)) > 0.8

    def test_short_texts_harder(self, study):
        clf, _, _, _ = study
        rng = np.random.default_rng(2)
        lang = synthetic_language(100)  # language 0 of the study
        long_correct = np.mean(
            clf.predict([sample_text(lang, 200, rng) for _ in range(10)]) == 0
        )
        assert long_correct > 0.8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LanguageHDCClassifier(dim=128).fit(["abc"], [0, 1])

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LanguageHDCClassifier(dim=128).predict(["abc def"])


def test_persistence_roundtrip(tmp_path):
    from repro.ml import MLPClassifier, MLPRegressor
    from repro.ml.persistence import load_mlp, save_mlp

    rng = np.random.default_rng(0)
    X = rng.normal(size=(80, 3))
    y = (X[:, 0] > 0).astype(int)
    clf = MLPClassifier(hidden=(8,), n_epochs=40).fit(X, y)
    path = tmp_path / "clf.npz"
    save_mlp(clf, str(path))
    loaded = load_mlp(str(path))
    assert np.array_equal(clf.predict(X), loaded.predict(X))
    assert np.allclose(clf.predict_proba(X), loaded.predict_proba(X))

    reg = MLPRegressor(hidden=(8,), n_epochs=40).fit(X, X[:, 0] * 2)
    rpath = tmp_path / "reg.npz"
    save_mlp(reg, str(rpath))
    rloaded = load_mlp(str(rpath))
    assert np.allclose(reg.predict(X), rloaded.predict(X))


def test_persistence_rejects_unfitted(tmp_path):
    from repro.ml import MLPClassifier
    from repro.ml.persistence import save_mlp

    with pytest.raises(ValueError):
        save_mlp(MLPClassifier(), str(tmp_path / "x.npz"))


def test_timing_report_structure():
    from repro.circuit import (
        SpiceLikeCharacterizer,
        StaticTimingAnalysis,
        build_default_library,
        synthesize_core,
    )

    lib = build_default_library()
    SpiceLikeCharacterizer().characterize_library(lib)
    net = synthesize_core(lib, n_instances=120, seed=0)
    sta = StaticTimingAnalysis(net, lib, clock_period_ps=500.0).run()

    paths = sta.endpoint_paths(4)
    assert len(paths) == 4
    # Sorted by ascending slack, worst first.
    slacks = [p["slack"] for p in paths]
    assert slacks == sorted(slacks)
    assert paths[0]["slack"] == sta.worst_slack
    # Paths are connected chains ending at the endpoint.
    for entry in paths:
        assert entry["path"][-1] == entry["endpoint"]
        for a, b in zip(entry["path"][:-1], entry["path"][1:]):
            assert a in net.get(b).fanin.values()

    report = sta.format_timing_report(n_paths=2)
    assert "Timing report" in report
    assert "Endpoint:" in report
    assert "slack" in report

    with pytest.raises(ValueError):
        sta.endpoint_paths(0)
