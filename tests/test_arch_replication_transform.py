"""Tests for the duplicate-and-compare program transformation."""

import numpy as np
import pytest

from repro.arch import measure_protection, protect_program
from repro.arch import programs as P
from repro.arch.cpu import CPU
from repro.arch.isa import Opcode, Program, add, addi, halt, st
from repro.arch.replication_transform import (
    DETECTION_FLAG_ADDR,
    DETECTION_FLAG_VALUE,
)


ALL_KERNELS = [
    P.vector_add(6),
    P.dot_product(6),
    P.fibonacci(8),
    P.checksum(8),
    P.bubble_sort(5),
    P.matmul(3),
]


class TestSemanticsPreservation:
    @pytest.mark.parametrize("program", ALL_KERNELS, ids=lambda p: p.name)
    def test_full_protection_preserves_output(self, program):
        protected = protect_program(program, set(range(len(program.instructions))))
        a = CPU(program, max_cycles=1_000_000).run().output(program.output_range)
        b = CPU(protected, max_cycles=1_000_000).run().output(program.output_range)
        assert a == b

    @pytest.mark.parametrize("program", ALL_KERNELS[:3], ids=lambda p: p.name)
    def test_partial_protection_preserves_output(self, program):
        protected = protect_program(program, {1, 3, 5})
        a = CPU(program, max_cycles=1_000_000).run().output(program.output_range)
        b = CPU(protected, max_cycles=1_000_000).run().output(program.output_range)
        assert a == b

    def test_empty_protection_set_is_identity_semantics(self):
        program = P.fibonacci(6)
        protected = protect_program(program, set())
        a = CPU(program).run().output(program.output_range)
        b = CPU(protected, max_cycles=1_000_000).run().output(program.output_range)
        assert a == b

    def test_scratch_register_conflict_rejected(self):
        conflicted = Program(
            "uses_r15",
            [addi(15, 0, 1), st(15, 0, 10), halt()],
            output_range=(10, 1),
        )
        with pytest.raises(ValueError):
            protect_program(conflicted, {0})


class TestDetection:
    def test_injected_fault_detected(self):
        # Protect the single add; flip its destination right after it runs.
        program = Program(
            "tiny",
            [addi(1, 0, 21), add(2, 1, 1), st(2, 0, 50), halt()],
            output_range=(50, 1),
        )
        protected = protect_program(program, {1})
        # Find the cycle where the protected add writes r2 (trace it).
        cpu = CPU(protected, max_cycles=10_000)
        trace = []
        while not cpu.halted:
            trace.append(cpu.pc)
            cpu.step()
        add_cycles = [
            c for c, pc in enumerate(trace)
            if protected.instructions[pc].opcode == Opcode.ADD
            and protected.instructions[pc].writes == 2
        ]
        cycle = add_cycles[0] + 1
        result = CPU(protected, max_cycles=10_000).run(fault=(cycle, "reg2", 5))
        assert result.memory.get(DETECTION_FLAG_ADDR) == DETECTION_FLAG_VALUE

    def test_rd_also_source_case_detected(self):
        # acc = acc + x: destination is a source; the save-register path.
        program = Program(
            "accum",
            [addi(1, 0, 5), addi(2, 0, 7), add(1, 1, 2), st(1, 0, 60), halt()],
            output_range=(60, 1),
        )
        protected = protect_program(program, {2})
        golden = CPU(protected, max_cycles=10_000).run()
        assert golden.output((60, 1)) == (12,)


class TestMeasurement:
    @pytest.fixture(scope="class")
    def full(self):
        program = P.checksum(10)
        return measure_protection(
            program, set(range(len(program.instructions))), n_trials=200, seed=0
        )

    def test_full_protection_eliminates_sdc(self, full):
        assert full.sdc_rate_unprotected > 0.2
        assert full.sdc_rate_protected < 0.02
        assert full.sdc_reduction > 0.95

    def test_full_protection_detects_most_faults(self, full):
        assert full.detection_rate > 0.8

    def test_slowdown_in_duplication_band(self, full):
        # Duplicate + compare of every instruction: 2x-3.5x.
        assert 1.8 < full.slowdown < 3.6

    def test_partial_protection_cheaper(self):
        program = P.checksum(10)
        partial = measure_protection(program, {4, 5}, n_trials=120, seed=1)
        full = measure_protection(
            program, set(range(len(program.instructions))), n_trials=120, seed=1
        )
        assert partial.slowdown < full.slowdown
        assert partial.sdc_rate_protected <= partial.sdc_rate_unprotected
