"""Tests for the cross-layer observability subsystem (repro.obs)."""

import json
import re
import warnings
from pathlib import Path

import pytest

from repro import obs
from repro.obs import (
    HistogramStat,
    RunRecorder,
    config_digest,
    layer_breakdown,
    layer_of,
    load_run_record,
    render_report,
    span_shape,
)
from repro.runtime import CampaignRunner, ProgressEvent, ProgressLog, ResultCache
from repro.runtime.telemetry import print_progress


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with collection off and state empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _span_chunk(chunk):
    """Module-level worker that opens spans (picklable for the pool)."""
    with obs.span("test.worker.chunk", trials=len(chunk)):
        results = []
        for rng in chunk.rngs():
            with obs.span("test.worker.trial"):
                obs.inc("test.worker.draws")
                obs.observe("test.worker.value", rng.random())
                results.append(float(rng.random()))
    return results


class TestSpans:
    def test_spans_nest_and_aggregate(self):
        obs.enable()
        with obs.span("arch.fault_injection.campaign", program="p"):
            for _ in range(3):
                with obs.span("circuit.sta.run"):
                    pass
        tree = obs.span_tree()
        campaign = tree["children"][0]
        assert campaign["name"] == "arch.fault_injection.campaign"
        assert campaign["count"] == 1
        assert campaign["attrs"] == {"program": "p"}
        (sta,) = campaign["children"]
        assert sta["name"] == "circuit.sta.run"
        assert sta["count"] == 3
        assert sta["total_s"] >= 0.0

    def test_disabled_spans_record_nothing(self):
        with obs.span("circuit.sta.run"):
            obs.inc("circuit.sta.runs")
        assert obs.span_tree()["children"] == []
        assert obs.metrics_snapshot()["counters"] == {}

    def test_disabled_span_is_shared_noop(self):
        # The no-op path must not allocate per call site.
        assert obs.span("a.b") is obs.span("c.d")

    def test_span_survives_exceptions(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("core.framework.episode"):
                raise RuntimeError("boom")
        (node,) = obs.span_tree()["children"]
        assert node["count"] == 1

    def test_collecting_context_restores_state(self):
        with obs.collecting():
            assert obs.enabled()
        assert not obs.enabled()

    def test_shape_ignores_times(self):
        obs.enable()
        with obs.span("a.x"):
            with obs.span("b.y"):
                pass
        shape = span_shape(obs.span_tree())
        assert shape == {
            "name": "run",
            "count": 0,
            "children": [
                {
                    "name": "a.x",
                    "count": 1,
                    "children": [{"name": "b.y", "count": 1, "children": []}],
                }
            ],
        }


class TestMetrics:
    def test_counters_gauges_histograms(self):
        obs.enable()
        obs.inc("runtime.cache.hits")
        obs.inc("runtime.cache.hits", 4)
        obs.set_gauge("system.platform.cores", 4)
        for v in (1.0, 3.0, 2.0):
            obs.observe("circuit.sta.slack_ps", v)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["runtime.cache.hits"] == 5
        assert snap["gauges"]["system.platform.cores"] == 4
        hist = snap["histograms"]["circuit.sta.slack_ps"]
        assert hist["count"] == 3
        assert hist["min"] == 1.0 and hist["max"] == 3.0
        assert hist["mean"] == pytest.approx(2.0)

    def test_histogram_merge(self):
        a, b = HistogramStat(), HistogramStat()
        a.observe(1.0)
        b.observe(5.0)
        b.observe(3.0)
        a.absorb(b.to_dict())
        assert a.count == 3
        assert a.min == 1.0 and a.max == 5.0

    def test_layer_of(self):
        assert layer_of("circuit.sta.runs") == "circuit"
        assert layer_of("runtime.cache.hits") == "runtime"


class TestWorkerPropagation:
    def test_capture_and_absorb_reparent_spans(self):
        obs.enable()
        with obs.capture() as cap:
            with obs.span("arch.cpu.run"):
                obs.inc("arch.cpu.steps", 7)
        # Nothing leaked into the parent tree while capturing...
        assert obs.span_tree()["children"] == []
        # ...and absorbing grafts under the currently active span.
        with obs.span("runtime.campaign"):
            obs.absorb(cap.snapshot)
        tree = obs.span_tree()
        (campaign,) = tree["children"]
        assert [c["name"] for c in campaign["children"]] == ["arch.cpu.run"]
        assert obs.metrics_snapshot()["counters"]["arch.cpu.steps"] == 7

    def test_absorb_none_is_noop(self):
        obs.enable()
        obs.absorb(None)
        assert obs.span_tree()["children"] == []

    def test_pool_and_serial_runs_have_identical_span_tree_shape(self):
        obs.enable()
        serial_results = CampaignRunner(jobs=1, chunk_size=8).run_trials(
            _span_chunk, 32, seed=9
        )
        serial_shape = span_shape(obs.span_tree())
        serial_counters = dict(obs.metrics_snapshot()["counters"])
        obs.reset()
        parallel_results = CampaignRunner(jobs=3, chunk_size=8).run_trials(
            _span_chunk, 32, seed=9
        )
        parallel_shape = span_shape(obs.span_tree())
        parallel_counters = dict(obs.metrics_snapshot()["counters"])
        assert serial_results == parallel_results
        assert serial_shape == parallel_shape
        assert serial_counters["test.worker.draws"] == 32
        assert parallel_counters == serial_counters

    def test_worker_spans_appear_under_runtime_campaign(self):
        obs.enable()
        CampaignRunner(jobs=2, chunk_size=8).run_trials(_span_chunk, 32, seed=1)
        (campaign,) = obs.span_tree()["children"]
        assert campaign["name"] == "runtime.campaign"
        (chunk,) = campaign["children"]
        assert chunk["name"] == "test.worker.chunk"
        assert chunk["count"] == 4  # 32 trials / chunk_size 8
        (trial,) = chunk["children"]
        assert trial["count"] == 32
        hist = obs.metrics_snapshot()["histograms"]["test.worker.value"]
        assert hist["count"] == 32

    def test_runner_notes_campaign_accounting(self, tmp_path):
        obs.enable()
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(jobs=1, chunk_size=8, cache=cache)
        runner.run_trials(_span_chunk, 16, seed=0, key=("note",))
        runner2 = CampaignRunner(jobs=1, chunk_size=8, cache=cache)
        runner2.run_trials(_span_chunk, 16, seed=0, key=("note",))
        notes = obs.campaign_notes()
        assert len(notes) == 2
        assert notes[0]["executed_trials"] == 16
        assert notes[0]["cache_misses"] == 2
        assert notes[1]["cached_trials"] == 16
        assert notes[1]["cache_hits"] == 2
        counters = obs.metrics_snapshot()["counters"]
        assert counters["runtime.cache.hits"] == 2
        assert counters["runtime.cache.writes"] == 2


class TestFaultInjectionSpans:
    def test_campaign_records_three_instrumented_levels(self):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.fibonacci(6))
        obs.enable()
        obs.reset()
        with obs.span("cli.fi"):
            injector.run_campaign(n_trials=32, seed=0, jobs=2)
        tree = obs.span_tree()
        layers = set()

        def walk(node):
            if node["name"] != "run":
                layers.add(layer_of(node["name"]))
            for child in node.get("children", ()):
                walk(child)

        walk(tree)
        assert {"cli", "arch", "runtime"} <= layers
        counters = obs.metrics_snapshot()["counters"]
        assert counters["arch.fault_injection.trials"] == 32

    def test_serial_and_parallel_campaign_trees_match(self):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.fibonacci(6))
        obs.enable()
        injector.run_campaign(n_trials=64, seed=2, jobs=1)
        serial = span_shape(obs.span_tree())
        obs.reset()
        injector.run_campaign(n_trials=64, seed=2, jobs=4)
        parallel = span_shape(obs.span_tree())
        assert serial == parallel


class TestProgressTelemetry:
    def _event(self, **kw):
        base = dict(
            done=50, total=100, cached=0, elapsed_s=5.0,
            trials_per_sec=10.0, histogram={},
        )
        base.update(kw)
        return ProgressEvent(**base)

    def test_eta_extrapolates_remaining_trials(self):
        assert self._event().eta_s == pytest.approx(5.0)

    def test_eta_undefined_when_nothing_executed(self):
        all_cached = self._event(done=50, cached=50, trials_per_sec=0.0)
        assert all_cached.executed == 0
        assert all_cached.eta_s is None

    def test_print_progress_shows_eta(self, capsys):
        print_progress(self._event(), stream=None)
        err = capsys.readouterr().err
        assert "10.0 trials/s" in err
        assert "eta 5s" in err

    def test_print_progress_guards_all_cached_rate(self, capsys):
        print_progress(
            self._event(done=100, cached=100, trials_per_sec=0.0,
                        cache_hits=4, cache_misses=0)
        )
        err = capsys.readouterr().err
        assert "all from cache" in err
        assert "trials/s" not in err
        assert "cache 4h/0m" in err

    def test_eta_format_minutes(self, capsys):
        print_progress(self._event(trials_per_sec=0.5))
        assert "eta 1m40s" in capsys.readouterr().err

    def test_runner_fills_cache_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        CampaignRunner(chunk_size=8, cache=cache).run_trials(
            _span_chunk, 16, seed=0, key=("pf",)
        )
        log = ProgressLog()
        runner = CampaignRunner(chunk_size=8, cache=cache, progress=log)
        runner.run_trials(_span_chunk, 16, seed=0, key=("pf",))
        assert log.last.cache_hits == 2
        assert log.last.cache_misses == 0
        assert log.last.cached == 16
        assert runner.stats.cache_hits == 2


class TestRunRecord:
    def _record_small_campaign(self, tmp_path):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.fibonacci(6))
        with RunRecorder(
            tmp_path, name="fi", config={"trials": 48}, seed=0
        ) as recorder:
            with obs.span("cli.fi"):
                injector.run_campaign(n_trials=48, seed=0, jobs=2)
        return recorder

    def test_record_is_valid_jsonl_with_all_sections(self, tmp_path):
        recorder = self._record_small_campaign(tmp_path)
        assert recorder.path.is_file()
        kinds = []
        with open(recorder.path) as fh:
            for line in fh:
                kinds.append(json.loads(line)["type"])
        assert kinds == ["meta", "spans", "metrics", "campaigns", "outcomes"]

    def test_loaded_record_contents(self, tmp_path):
        recorder = self._record_small_campaign(tmp_path)
        record = load_run_record(recorder.run_dir)
        meta = record["meta"]
        assert meta["schema"] == 1
        assert meta["name"] == "fi"
        assert meta["seed_root"] == 0
        assert meta["status"] == "ok"
        assert meta["config_digest"] == config_digest({"trials": 48})
        import repro

        assert meta["version"] == repro.__version__
        assert sum(record["outcomes"]["histogram"].values()) == 48
        (campaign,) = record["campaigns"]["campaigns"]
        assert campaign["total_trials"] == 48
        layers = layer_breakdown(record["spans"]["root"])
        assert {"cli", "arch", "runtime"} <= set(layers)

    def test_load_accepts_base_dir_and_file(self, tmp_path):
        recorder = self._record_small_campaign(tmp_path)
        by_base = load_run_record(tmp_path)
        by_file = load_run_record(recorder.path)
        assert by_base["meta"]["run_id"] == by_file["meta"]["run_id"]

    def test_load_missing_record_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_record(tmp_path)

    def test_recorder_restores_disabled_state(self, tmp_path):
        self._record_small_campaign(tmp_path)
        assert not obs.enabled()

    def test_recorder_writes_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunRecorder(tmp_path, name="boom") as recorder:
                raise RuntimeError("nope")
        record = load_run_record(recorder.path)
        assert record["meta"]["status"] == "error: RuntimeError"

    def test_render_report_sections(self, tmp_path):
        recorder = self._record_small_campaign(tmp_path)
        text = render_report(load_run_record(recorder.run_dir))
        assert "== run record:" in text
        assert "== campaigns ==" in text
        assert "== outcomes ==" in text
        assert "== per-layer time ==" in text
        assert "== span tree ==" in text
        assert "arch.fault_injection.campaign" in text
        for layer in ("cli", "arch", "runtime"):
            assert layer in text


class TestLayerBreakdown:
    def test_self_time_excludes_children(self):
        root = {
            "name": "run", "count": 0, "total_s": 0.0,
            "children": [
                {
                    "name": "a.outer", "count": 1, "total_s": 10.0,
                    "children": [
                        {"name": "b.inner", "count": 5, "total_s": 4.0, "children": []}
                    ],
                }
            ],
        }
        layers = layer_breakdown(root)
        assert layers["a"]["self_s"] == pytest.approx(6.0)
        assert layers["b"]["self_s"] == pytest.approx(4.0)
        assert layers["b"]["calls"] == 5


class TestInstrumentedLayers:
    """Each instrumented seam emits its metrics when collection is on."""

    def test_sta_span_and_counters(self):
        from repro.circuit import SpiceLikeCharacterizer, build_default_library
        from repro.circuit import synthesize_core
        from repro.circuit.sta import StaticTimingAnalysis

        library = build_default_library()
        SpiceLikeCharacterizer().characterize_library(library)
        netlist = synthesize_core(library, n_instances=40, seed=0)
        obs.enable()
        StaticTimingAnalysis(netlist, library).run()
        counters = obs.metrics_snapshot()["counters"]
        assert counters["circuit.sta.runs"] == 1
        assert counters["circuit.sta.arrival_propagations"] == len(netlist)
        (sta_span,) = obs.span_tree()["children"]
        assert sta_span["name"] == "circuit.sta.run"

    def test_aging_eval_counters(self):
        from repro.transistor.aging import hci_delta_vth, nbti_delta_vth

        obs.enable()
        nbti_delta_vth([1e6, 1e7, 1e8], 0.5, 100.0)
        hci_delta_vth(1e7, 0.2, 85.0)
        counters = obs.metrics_snapshot()["counters"]
        assert counters["transistor.aging.nbti_evals"] == 3
        assert counters["transistor.aging.hci_evals"] == 1

    def test_montecarlo_level_span(self):
        from repro.core import MonteCarloStudy, adpcm_like_workload

        study = MonteCarloStudy(adpcm_like_workload(n_segments=4, seed=0), n_runs=3)
        obs.enable()
        study.sweep([1e-6, 1e-5])
        (campaign,) = obs.span_tree()["children"]
        (level,) = campaign["children"]
        assert level["name"] == "core.montecarlo.level"
        assert level["count"] == 2
        assert obs.metrics_snapshot()["counters"]["core.montecarlo.levels"] == 2

    def test_framework_episode_span(self):
        from repro.core.framework import ReliabilityManagementLoop
        from repro.system.rl import QLearningAgent

        loop = ReliabilityManagementLoop(
            agent=QLearningAgent(n_actions=2, seed=0),
            observe=lambda s: (0,),
            apply_action=lambda s, a: None,
            reward=lambda s: 1.0,
            step_system=lambda s: None,
        )
        obs.enable()
        loop.run_episode(object(), n_epochs=5)
        (episode,) = obs.span_tree()["children"]
        assert episode["name"] == "core.framework.episode"
        assert obs.metrics_snapshot()["counters"]["core.framework.epochs"] == 5

    def test_platform_and_scheduler_counters(self):
        from repro.system import StaticManager, generate_task_set
        from repro.system import run_managed_simulation

        obs.enable()
        run_managed_simulation(
            StaticManager(), generate_task_set(n_tasks=4, total_utilization=1.0,
                                               seed=0),
            n_cores=2, duration=2.0, seed=0,
        )
        counters = obs.metrics_snapshot()["counters"]
        assert counters["system.managers.control_epochs"] > 0
        assert counters["system.platform.steps"] > 0
        assert counters["system.scheduler.partitions"] == 1
        assert counters["system.scheduler.edf_checks"] > 0
        (sim,) = obs.span_tree()["children"]
        assert sim["name"] == "system.managers.simulation"
        assert sim["children"][0]["name"] == "system.platform.run"


class TestCLIIntegration:
    def test_record_flag_writes_and_report_renders(self, tmp_path, capsys,
                                                   monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        runs = tmp_path / "runs"
        assert main(["fi", "--trials", "64", "--no-cache",
                     "--record", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "run record:" in out
        record = load_run_record(runs)
        assert record["meta"]["name"] == "fi"
        layers = set(layer_breakdown(record["spans"]["root"]))
        assert {"cli", "arch", "runtime"} <= layers
        assert main(["report", str(runs)]) == 0
        report = capsys.readouterr().out
        assert "per-layer time" in report
        assert "arch" in report

    def test_recording_is_off_after_cli_run(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fi", "--trials", "32", "--no-cache",
                     "--record", str(tmp_path / "runs")]) == 0
        assert not obs.enabled()

    def test_report_missing_path_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nowhere")]) == 2
        assert "cannot load run record" in capsys.readouterr().err

    def test_unrecorded_run_adds_no_observability_state(self, tmp_path, capsys,
                                                        monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fi", "--trials", "32", "--no-cache"]) == 0
        assert obs.span_tree()["children"] == []
        assert obs.metrics_snapshot()["counters"] == {}


class TestTornTailRunRecord:
    """A killed writer leaves a truncated final record line; tolerate it."""

    def _torn_record(self, tmp_path):
        path = tmp_path / "record.jsonl"
        lines = [
            json.dumps({"type": "meta", "run_id": "torn", "schema": 1,
                        "name": "fi", "status": "ok"}),
            json.dumps({"type": "spans",
                        "root": {"name": "run", "count": 0, "total_s": 0.0,
                                 "children": []}}),
            json.dumps({"type": "metrics", "counters": {}, "gauges": {},
                        "histograms": {}}),
        ]
        path.write_text("\n".join(lines) + '\n{"type": "outcomes", "hist')
        return path

    def test_torn_tail_warns_and_keeps_parsed_sections(self, tmp_path):
        path = self._torn_record(tmp_path)
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            record = load_run_record(path)
        assert record["meta"]["run_id"] == "torn"
        assert "spans" in record and "metrics" in record
        assert "outcomes" not in record  # the torn line is dropped

    def test_intact_record_loads_without_warning(self, tmp_path):
        path = tmp_path / "record.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "run_id": "ok", "schema": 1}) + "\n"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            record = load_run_record(path)
        assert record["meta"]["run_id"] == "ok"


class TestHistogramQuantiles:
    def test_nearest_rank_percentiles(self):
        stat = HistogramStat()
        for v in range(1, 101):
            stat.observe(float(v))
        d = stat.to_dict()
        assert d["p50"] == 51.0
        assert d["p95"] == 96.0
        assert d["p99"] == 100.0
        assert d["reservoir"][:3] == [1.0, 2.0, 3.0]

    def test_empty_histogram_has_none_quantiles(self):
        d = HistogramStat().to_dict()
        assert d["p50"] is None and d["p95"] is None and d["p99"] is None

    def test_reservoir_is_bounded(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        stat = HistogramStat()
        for v in range(RESERVOIR_SIZE + 100):
            stat.observe(float(v))
        assert stat.count == RESERVOIR_SIZE + 100
        assert len(stat.reservoir) == RESERVOIR_SIZE
        assert stat.max == float(RESERVOIR_SIZE + 99)  # summary stays exact

    def test_absorb_merges_reservoirs_up_to_the_cap(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        a, b = HistogramStat(), HistogramStat()
        a.observe(1.0)
        b.observe(9.0)
        b.observe(5.0)
        a.absorb(b.to_dict())
        assert sorted(a.reservoir) == [1.0, 5.0, 9.0]
        assert a.quantile(0.5) == 5.0
        full = HistogramStat()
        for v in range(RESERVOIR_SIZE):
            full.observe(float(v))
        full.absorb(b.to_dict())
        assert len(full.reservoir) == RESERVOIR_SIZE
        assert full.count == RESERVOIR_SIZE + 2

    def test_render_report_surfaces_quantiles(self, tmp_path):
        with RunRecorder(tmp_path, name="hist") as recorder:
            for v in (1.0, 2.0, 3.0, 10.0):
                obs.observe("runtime.unit.seconds", v)
        text = render_report(load_run_record(recorder.run_dir))
        assert "== histograms ==" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "runtime.unit.seconds" in text


class TestMetricNamespace:
    """Every metric the library emits must map onto a known layer."""

    _SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
    _METRIC_CALL = re.compile(
        r"obs\.(?:inc|set_gauge|observe)\(\s*f?[\"']([^\"']+)[\"']"
    )

    def _emitted_names(self):
        names = set()
        for path in self._SRC.rglob("*.py"):
            names.update(self._METRIC_CALL.findall(path.read_text()))
        return names

    def test_every_emitted_family_has_a_known_layer(self):
        known = {"transistor", "circuit", "arch", "core", "runtime",
                 "system", "cli"}
        names = self._emitted_names()
        assert len(names) >= 20  # the instrumented seams exist
        for name in sorted(names):
            assert layer_of(name) in known, f"unknown layer: {name}"
            assert name.count(".") >= 2, f"not layer.component.metric: {name}"

    def test_known_seams_are_still_instrumented(self):
        names = self._emitted_names()
        for expected in (
            "arch.fault_injection.trials",
            "runtime.cache.hits",
            "runtime.fault.retries",
            "runtime.runner.trials_executed",
            "transistor.aging.nbti_evals",
            "circuit.sta.runs",
            "system.scheduler.placements",
        ):
            assert expected in names, f"seam lost: {expected}"
