"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import (
    KFold,
    MinMaxScaler,
    StandardScaler,
    cross_val_score,
    one_hot,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 4))
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((3, 2)))


class TestMinMaxScaler:
    def test_range_is_unit_interval(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-7, 13, size=(100, 2))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0
        assert np.isclose(Z.min(axis=0), 0.0).all()
        assert np.isclose(Z.max(axis=0), 1.0).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2, seed=0)
        assert len(Xte) == 20 and len(Xtr) == 80
        assert len(ytr) == 80 and len(yte) == 20

    def test_partition_is_disjoint_and_complete(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        Xtr, Xte, _, _ = train_test_split(X, y, test_size=0.3, seed=3)
        combined = sorted(np.concatenate([Xtr.ravel(), Xte.ravel()]).tolist())
        assert combined == list(range(50))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((5, 1)), np.ones(4))

    def test_no_shuffle_takes_head_as_test(self):
        X = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        _, Xte, _, _ = train_test_split(X, y, test_size=0.2, shuffle=False)
        assert Xte.ravel().tolist() == [0, 1]

    def test_all_test_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_size=1.0)


class TestOneHot:
    def test_shape_and_values(self):
        Y = one_hot(np.array([0, 2, 1]))
        assert Y.shape == (3, 3)
        assert Y.sum() == 3
        assert Y[1, 2] == 1.0

    def test_explicit_n_classes(self):
        Y = one_hot(np.array([0, 1]), n_classes=5)
        assert Y.shape == (2, 5)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int))


class TestKFold:
    def test_folds_cover_all_samples_once(self):
        X = np.arange(23)
        seen = []
        for _, test_idx in KFold(n_splits=5, seed=0).split(X):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_train_test_disjoint(self):
        X = np.arange(20)
        for train_idx, test_idx in KFold(n_splits=4).split(X):
            assert set(train_idx).isdisjoint(test_idx)

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_min_splits_validation(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


def test_cross_val_score_reasonable():
    from repro.ml.knn import KNeighborsClassifier
    from repro.ml.metrics import accuracy_score

    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 0.5, (40, 2)), rng.normal(3, 0.5, (40, 2))])
    y = np.repeat([0, 1], 40)
    scores = cross_val_score(
        lambda: KNeighborsClassifier(3), X, y, accuracy_score, n_splits=4
    )
    assert len(scores) == 4
    assert scores.mean() > 0.9
