"""End-to-end integration tests chaining modules across layers."""

import numpy as np
import pytest

from repro.arch import FaultInjector, PatternMiner, assemble
from repro.arch.sdc_prediction import build_instruction_graph
from repro.circuit import (
    SheFlow,
    SpiceLikeCharacterizer,
    StaticTimingAnalysis,
    build_default_library,
    parse_liberty,
    synthesize_core,
    write_liberty,
)
from repro.core import CheckpointSystem, adpcm_like_workload, simulate_run, WCET
from repro.system import (
    RLDVFSManager,
    generate_task_set,
    run_managed_simulation,
)


class TestCircuitPipeline:
    """library -> liberty roundtrip -> netlist -> STA -> SHE flow."""

    def test_full_circuit_flow(self, tmp_path):
        library = build_default_library(temperature_c=45.0)
        characterizer = SpiceLikeCharacterizer()
        characterizer.characterize_library(library)

        # Serialize through Liberty and continue with the parsed library.
        lib_path = tmp_path / "tech.lib"
        write_liberty(library, path=str(lib_path))
        reparsed = parse_liberty(lib_path.read_text())

        netlist = synthesize_core(reparsed, n_instances=100, seed=11)
        sta = StaticTimingAnalysis(netlist, reparsed).run()
        assert sta.min_feasible_period() > 0

        report = SheFlow(characterizer).run(netlist, library)
        assert set(report.instance_delta_t) == set(netlist.instance_names())
        assert report.spread()[2] > report.spread()[0]


class TestArchPipeline:
    """assembly source -> program -> FI campaign -> mining -> graph."""

    SRC = """
    .output 500 1
    .word 0 11
    .word 1 23
    .word 2 35
        addi r1, r0, 0
        lui  r2, 3
        addi r3, r0, 0
    loop:
        beq  r1, r2, done
        ld   r4, r1, 0
        add  r3, r3, r4
        addi r1, r1, 1
        jmp  loop
    done:
        st   r3, r0, 500
        halt
    """

    def test_assembled_program_through_the_stack(self):
        program = assemble(self.SRC, name="asm_sum")
        injector = FaultInjector(program)
        assert injector.golden_output == (11 + 23 + 35,)

        campaign = injector.run_campaign(n_trials=200, seed=0)
        miner = PatternMiner([campaign], seed=0).fit_outcome_predictor(
            n_estimators=10
        )
        assert miner.n_records == 200

        graph = build_instruction_graph(program)
        assert graph.n_nodes == len(program.instructions)
        # The loop body creates both control and data edges.
        assert 0 in set(graph.edge_types)
        assert 1 in set(graph.edge_types)


class TestSystemPipeline:
    """task set -> platform -> trained RL manager -> reliability metrics."""

    def test_rl_manager_full_loop(self):
        tasks = generate_task_set(n_tasks=6, total_utilization=1.5, seed=4)
        manager = RLDVFSManager(seed=0)
        metrics = run_managed_simulation(
            manager, tasks, n_cores=4, duration=8.0, seed=0, training_episodes=3
        )
        assert metrics.jobs_released > 0
        assert metrics.mttf_years > 0
        assert 0.0 <= metrics.deadline_hit_rate <= 1.0
        assert manager.agent.n_visited_states >= 1


class TestCoreAblation:
    def test_routine_error_exposure_barely_moves_results(self):
        """The paper's Eq. (2) ignores errors during the 100/48-cycle
        routines; with 40k+ cycle segments that exclusion is negligible."""
        seg = 150_000
        excl = CheckpointSystem(1e-5, include_routine_errors=False)
        incl = CheckpointSystem(1e-5, include_routine_errors=True)
        a = excl.expected_segment_rollbacks(seg)
        b = incl.expected_segment_rollbacks(seg)
        assert b > a  # more exposed cycles, strictly more rollbacks
        assert (b - a) / a < 0.01  # ...but below 1% relative

    def test_routine_error_exposure_keeps_fig6_shape(self):
        workload = adpcm_like_workload(n_segments=8, seed=2)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        cp_a = CheckpointSystem(3e-6, include_routine_errors=False)
        cp_b = CheckpointSystem(3e-6, include_routine_errors=True)
        hits_a = sum(
            simulate_run(workload, cp_a, WCET, rng_a).deadline_met for _ in range(40)
        )
        hits_b = sum(
            simulate_run(workload, cp_b, WCET, rng_b).deadline_met for _ in range(40)
        )
        assert abs(hits_a - hits_b) <= 4


class TestMLMetricsAdditions:
    def test_roc_auc_perfect_separation(self):
        from repro.ml.metrics import roc_auc_score

        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_roc_auc_random_scores_half(self):
        from repro.ml.metrics import roc_auc_score

        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        s = rng.random(2000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.05)

    def test_roc_auc_ties_midranked(self):
        from repro.ml.metrics import roc_auc_score

        assert roc_auc_score([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_roc_auc_single_class_rejected(self):
        from repro.ml.metrics import roc_auc_score

        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.1, 0.2])

    def test_roc_auc_on_symptom_detector_scores(self):
        """AUC of the symptom detector's probability output is near 1."""
        from repro.arch import SymptomDetector
        from repro.arch.warning_net import make_image_dataset
        from repro.ml import MLPClassifier, train_test_split
        from repro.ml.metrics import roc_auc_score

        X, y = make_image_dataset(n_samples=300, seed=3)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=0)
        mission = MLPClassifier(hidden=(32, 16), n_epochs=100, lr=3e-3, seed=0).fit(
            Xtr, ytr
        )
        detector = SymptomDetector(mission, seed=0).fit(Xtr[:150])
        feats, labels, _ = detector._build_dataset(Xte[:100], seed=5)
        probs = detector._detector.predict_proba(
            detector._scaler.transform(feats)
        )[:, 1]
        assert roc_auc_score(labels, probs) > 0.95
