"""Tests for Liberty-format library serialization."""

import numpy as np
import pytest

from repro.circuit import (
    SpiceLikeCharacterizer,
    StaticTimingAnalysis,
    build_default_library,
    parse_liberty,
    read_liberty,
    synthesize_core,
    write_liberty,
)
from repro.circuit.liberty import LibertyParseError


@pytest.fixture(scope="module")
def characterized():
    lib = build_default_library(temperature_c=45.0, delta_vth=0.02)
    SpiceLikeCharacterizer().characterize_library(lib)
    return lib


@pytest.fixture(scope="module")
def roundtripped(characterized):
    return parse_liberty(write_liberty(characterized))


class TestWrite:
    def test_header_attributes(self, characterized):
        text = write_liberty(characterized)
        assert "nom_temperature : 45;" in text
        assert "delta_vth : 0.02;" in text

    def test_all_cells_present(self, characterized):
        text = write_liberty(characterized)
        for name in characterized.cell_names():
            assert f"cell ({name})" in text

    def test_file_output(self, characterized, tmp_path):
        path = tmp_path / "lib.lib"
        write_liberty(characterized, path=str(path))
        assert path.read_text().startswith("library (")


class TestRoundtrip:
    def test_cell_count_preserved(self, characterized, roundtripped):
        assert len(roundtripped) == len(characterized)

    def test_corner_preserved(self, characterized, roundtripped):
        assert roundtripped.temperature_c == characterized.temperature_c
        assert roundtripped.vdd == characterized.vdd
        assert roundtripped.delta_vth == characterized.delta_vth

    def test_structure_preserved(self, characterized, roundtripped):
        for name in ("INV_X1", "NAND3_X4", "DFF_X1"):
            a = characterized.get(name)
            b = roundtripped.get(name)
            assert a.inputs == b.inputs
            assert a.output == b.output
            assert a.is_sequential == b.is_sequential
            assert a.stack_depth == b.stack_depth
            assert a.input_cap_ff == pytest.approx(b.input_cap_ff, rel=1e-4)

    def test_tables_preserved_to_serialization_precision(
        self, characterized, roundtripped
    ):
        for name in ("INV_X2", "XOR2_X4"):
            a = characterized.get(name)
            b = roundtripped.get(name)
            assert len(a.arcs) == len(b.arcs)
            for arc_a, arc_b in zip(a.arcs, b.arcs):
                assert arc_a.input_pin == arc_b.input_pin
                assert arc_a.delay(20.0, 4.0) == pytest.approx(
                    arc_b.delay(20.0, 4.0), rel=1e-4
                )
                assert arc_a.output_slew(20.0, 4.0) == pytest.approx(
                    arc_b.output_slew(20.0, 4.0), rel=1e-4
                )

    def test_sta_agrees_across_roundtrip(self, characterized, roundtripped):
        netlist = synthesize_core(characterized, n_instances=120, seed=3)
        p1 = StaticTimingAnalysis(netlist, characterized).run().min_feasible_period()
        p2 = StaticTimingAnalysis(netlist, roundtripped).run().min_feasible_period()
        assert p1 == pytest.approx(p2, rel=1e-4)

    def test_read_from_disk(self, characterized, tmp_path):
        path = tmp_path / "lib.lib"
        write_liberty(characterized, path=str(path))
        lib = read_liberty(str(path))
        assert len(lib) == len(characterized)


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(LibertyParseError):
            parse_liberty("cell (X) { }")

    def test_missing_attributes(self):
        with pytest.raises(LibertyParseError):
            parse_liberty(
                "library (x) {\n  nom_temperature : 25;\n  nom_voltage : 0.8;\n"
                "  cell (BAD) { }\n}"
            )
