"""Tests for the two-pass assembler."""

import pytest

from repro.arch.assembler import AssemblyError, assemble
from repro.arch.cpu import CPU
from repro.arch.isa import Opcode


class TestAssembleBasics:
    def test_minimal_program(self):
        prog = assemble("halt\n.output 0 1")
        assert len(prog) == 1
        assert prog[0].opcode == Opcode.HALT

    def test_three_register_ops(self):
        prog = assemble("add r1, r2, r3\nhalt\n.output 0 1")
        assert prog[0].rd == 1 and prog[0].rs1 == 2 and prog[0].rs2 == 3

    def test_comments_stripped(self):
        prog = assemble("nop ; trailing\n# whole line\nhalt\n.output 0 1")
        assert len(prog) == 2

    def test_word_directive_preloads_memory(self):
        prog = assemble(".word 5 42\nhalt\n.output 0 1")
        assert prog.initial_memory[5] == 42

    def test_output_override(self):
        prog = assemble("halt\n.output 0 1", output_range=(10, 2))
        assert prog.output_range == (10, 2)


class TestLabels:
    def test_forward_and_backward_labels(self):
        src = """
        .output 100 1
            addi r1, r0, 0
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            st   r1, r0, 100
            halt
        """
        prog = assemble(src)
        # blt at index 2 targets index 1: offset = 1 - 3 = -2
        assert prog[2].imm == -2

    def test_label_on_own_line(self):
        src = "start:\n  jmp start\n  halt\n.output 0 1"
        prog = assemble(src)
        assert prog[0].imm == -1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\nnop\na:\nhalt\n.output 0 1")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere\nhalt\n.output 0 1")


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1\nhalt\n.output 0 1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2\nhalt\n.output 0 1")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, r99\nhalt\n.output 0 1")

    def test_missing_output_range(self):
        with pytest.raises(AssemblyError):
            assemble("halt")

    def test_label_as_addi_literal_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("addi r1, r0, loop\nloop: halt\n.output 0 1")


class TestExecution:
    def test_assembled_checksum_runs_correctly(self):
        src = """
        .output 400 1
        .word 0 7
        .word 1 9
        .word 2 12
            addi r1, r0, 0
            lui  r2, 3
            addi r3, r0, 0
        loop:
            beq  r1, r2, done
            ld   r4, r1, 0
            xor  r3, r3, r4
            addi r1, r1, 1
            jmp  loop
        done:
            st   r3, r0, 400
            halt
        """
        prog = assemble(src, name="asm_checksum")
        out = CPU(prog).run().output(prog.output_range)
        assert out == (7 ^ 9 ^ 12,)

    def test_assembled_program_matches_builder_version(self):
        """The assembler and the builder helpers produce equivalent kernels."""
        from repro.arch import programs as P

        builder = P.fibonacci(8)
        src = """
        .output 0 8
            addi r1, r0, 0
            addi r2, r0, 1
            addi r3, r0, 0
            lui  r4, 8
        loop:
            beq  r3, r4, done
            st   r1, r3, 0
            add  r5, r1, r2
            add  r1, r2, r0
            add  r2, r5, r0
            addi r3, r3, 1
            jmp  loop
        done:
            halt
        """
        asm = assemble(src, name="asm_fib")
        out_builder = CPU(builder).run().output(builder.output_range)
        out_asm = CPU(asm).run().output(asm.output_range)
        assert out_builder == out_asm

    def test_assembled_program_injectable(self):
        """Assembled programs drop straight into the fault injector."""
        from repro.arch import FaultInjector

        src = """
        .output 400 1
        .word 0 3
            ld r1, r0, 0
            add r2, r1, r1
            st r2, r0, 400
            halt
        """
        prog = assemble(src, name="asm_tiny")
        injector = FaultInjector(prog)
        campaign = injector.run_campaign(n_trials=50, seed=0)
        assert len(campaign.records) == 50
