"""Tests for the consolidation DPM manager."""

import pytest

from repro.system import (
    ConsolidationDPMManager,
    Core,
    Platform,
    StaticManager,
    first_fit_partition,
    generate_task_set,
    run_managed_simulation,
)


@pytest.fixture()
def light_tasks():
    return generate_task_set(n_tasks=6, total_utilization=0.8, seed=1)


@pytest.fixture()
def heavy_tasks():
    return generate_task_set(n_tasks=8, total_utilization=3.2, seed=2)


class TestConsolidation:
    def test_sleeps_unneeded_cores_under_light_load(self, light_tasks):
        cores = [Core(i) for i in range(4)]
        platform = Platform(
            cores, light_tasks, first_fit_partition(light_tasks, cores), seed=0
        )
        manager = ConsolidationDPMManager()
        manager.control(platform)
        assert manager.active_core_count(platform) < 4

    def test_keeps_all_awake_under_heavy_load(self, heavy_tasks):
        cores = [Core(i) for i in range(4)]
        platform = Platform(
            cores, heavy_tasks, first_fit_partition(heavy_tasks, cores), seed=0
        )
        manager = ConsolidationDPMManager()
        manager.control(platform)
        assert manager.active_core_count(platform) == 4

    def test_saves_energy_without_missing_deadlines(self, light_tasks):
        static = run_managed_simulation(
            StaticManager(), light_tasks, n_cores=4, duration=10.0, seed=0
        )
        dpm = run_managed_simulation(
            ConsolidationDPMManager(), light_tasks, n_cores=4, duration=10.0, seed=0
        )
        assert dpm.energy_j < static.energy_j
        assert dpm.deadline_hit_rate > 0.99

    def test_tasks_never_mapped_to_sleeping_core(self, light_tasks):
        cores = [Core(i) for i in range(4)]
        platform = Platform(
            cores, light_tasks, first_fit_partition(light_tasks, cores), seed=0
        )
        manager = ConsolidationDPMManager()
        manager.control(platform)
        for task in light_tasks:
            core = platform.cores[platform.assignment[task.name]]
            assert core.power_state == "active"

    def test_invalid_headroom_rejected(self):
        with pytest.raises(ValueError):
            ConsolidationDPMManager(utilization_headroom=1.0)

    def test_headroom_reduces_packing_density(self, light_tasks):
        cores_a = [Core(i) for i in range(4)]
        platform_a = Platform(
            cores_a, light_tasks, first_fit_partition(light_tasks, cores_a), seed=0
        )
        tight = ConsolidationDPMManager(utilization_headroom=0.0)
        tight.control(platform_a)

        cores_b = [Core(i) for i in range(4)]
        platform_b = Platform(
            cores_b, light_tasks, first_fit_partition(light_tasks, cores_b), seed=0
        )
        loose = ConsolidationDPMManager(utilization_headroom=0.5)
        loose.control(platform_b)
        assert loose.active_core_count(platform_b) >= tight.active_core_count(
            platform_a
        )
