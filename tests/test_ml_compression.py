"""Tests for MLP pruning and quantization (ref [31] mechanisms)."""

import numpy as np
import pytest

from repro.ml import MLPClassifier, accuracy_score, prune_mlp, quantize_mlp
from repro.ml.compression import compression_ratio, sparsity_of


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 0.6, (80, 3)), rng.normal(3, 0.6, (80, 3))])
    y = np.repeat([0, 1], 80)
    model = MLPClassifier(hidden=(24,), n_epochs=150, lr=3e-3).fit(X, y)
    return model, X, y


class TestPrune:
    def test_sparsity_reached(self, fitted):
        model, _, _ = fitted
        pruned = prune_mlp(model, sparsity=0.5)
        assert sparsity_of(pruned) >= 0.45

    def test_accuracy_survives_moderate_pruning(self, fitted):
        model, X, y = fitted
        pruned = prune_mlp(model, sparsity=0.5)
        assert accuracy_score(y, pruned.predict(X)) > 0.9

    def test_original_untouched(self, fitted):
        model, _, _ = fitted
        before = [W.copy() for W in model.weights_]
        prune_mlp(model, sparsity=0.8)
        for a, b in zip(before, model.weights_):
            assert np.array_equal(a, b)

    def test_invalid_sparsity(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            prune_mlp(model, sparsity=1.0)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            prune_mlp(MLPClassifier())


class TestQuantize:
    def test_accuracy_survives_8bit(self, fitted):
        model, X, y = fitted
        q = quantize_mlp(model, n_bits=8)
        assert accuracy_score(y, q.predict(X)) > 0.9

    def test_low_bits_change_weights(self, fitted):
        model, _, _ = fitted
        q = quantize_mlp(model, n_bits=2)
        assert not np.allclose(q.weights_[0], model.weights_[0])

    def test_levels_bounded(self, fitted):
        model, _, _ = fitted
        q = quantize_mlp(model, n_bits=3)
        unique = np.unique(q.weights_[0])
        assert len(unique) <= 2**3 + 1

    def test_invalid_bits(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            quantize_mlp(model, n_bits=0)


def test_compression_ratio_monotonic(fitted):
    model, _, _ = fitted
    dense = compression_ratio(model, sparsity=0.0, n_bits=32)
    pruned = compression_ratio(model, sparsity=0.9, n_bits=8)
    assert pruned > dense
    assert dense == pytest.approx(1.0)
