"""Tests for the HDC aging-mimic model (ref [18])."""

import numpy as np
import pytest

from repro.hdc import HDCAgingModel
from repro.transistor import Transistor, combined_delta_vth, waveform_duty_cycle


def _dataset(n=200, seed=0, length=24):
    """Synthetic gate-voltage waveforms labelled by the physics aging model."""
    rng = np.random.default_rng(seed)
    pmos = Transistor(is_pmos=True)
    waveforms = []
    labels = []
    for _ in range(n):
        duty_target = rng.uniform(0.05, 0.95)
        wave = (rng.random(length) > duty_target).astype(float) * 0.8
        duty = waveform_duty_cycle(wave)
        dvth = float(
            combined_delta_vth(
                pmos,
                stress_time_s=3.15e8,  # ~10 years
                duty_cycle=duty,
                temperature_c=100.0,
            )
        )
        waveforms.append(wave)
        labels.append(dvth)
    return waveforms, np.array(labels)


class TestHDCAgingModel:
    def test_predictions_correlate_with_physics(self):
        waves, labels = _dataset(n=250, seed=1)
        model = HDCAgingModel(dim=4096, n_buckets=20, seed=0)
        model.fit(waves[:200], labels[:200])
        pred = model.predict(waves[200:])
        corr = np.corrcoef(pred, labels[200:])[0, 1]
        assert corr > 0.7

    def test_predictions_within_label_range(self):
        waves, labels = _dataset(n=100, seed=2)
        model = HDCAgingModel(dim=2048, seed=0).fit(waves, labels)
        pred = model.predict(waves[:10])
        assert pred.min() >= labels.min() - 1e-9
        assert pred.max() <= labels.max() + 1e-9

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HDCAgingModel().fit([np.ones(10)], np.array([0.1, 0.2]))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            HDCAgingModel().fit([], np.array([]))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            HDCAgingModel().predict([np.ones(10)])

    def test_short_waveform_rejected(self):
        model = HDCAgingModel(ngram=5, dim=512)
        with pytest.raises(ValueError):
            model.fit([np.ones(3)], np.array([0.1]))

    def test_abstracts_physics_constants(self):
        # The fitted model exposes only hypervector prototypes and bucket
        # centers — no physics coefficients (the confidentiality argument).
        waves, labels = _dataset(n=50, seed=3)
        model = HDCAgingModel(dim=512, seed=0).fit(waves, labels)
        public_attrs = {k for k in vars(model) if not k.startswith("_")}
        assert "NBTI_A" not in public_attrs
        assert model._prototypes.dtype.kind == "i"
