"""Scalar-vs-batched equivalence of the Sec. V Monte Carlo kernels.

The batched numpy kernels (``sample_rollbacks_batch`` /
``sample_segments_batch`` / ``simulate_runs_batch`` and the
``MonteCarloStudy`` dispatch) must be

* *exactly* equivalent on analytic quantities,
* *draw-for-draw* equivalent to the scalar path given the same rollback
  samples (including the "hopelessly late" early exit), and
* *distribution*-equivalent on sampled quantities at fixed seeds (the
  per-policy streams assign draws to runs differently once a scalar run
  early-exits).

See ``docs/performance.md`` for the contract these tests pin down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALL_POLICIES,
    DS,
    WCET,
    AdaptiveBudgetPolicy,
    BudgetPolicy,
    CheckpointSystem,
    MonteCarloStudy,
    SegmentedWorkload,
    adpcm_like_workload,
    expected_rollbacks,
    sample_rollbacks_batch,
    simulate_run,
    simulate_runs_batch,
)


class TestSampleRollbacksBatch:
    def test_shape_and_dtype(self):
        rng = np.random.default_rng(0)
        draws = sample_rollbacks_batch(1e-5, [10_000, 50_000, 90_000], rng, 7)
        assert draws.shape == (7, 3)
        assert np.issubdtype(draws.dtype, np.integer)
        assert (draws >= 0).all()

    def test_error_free_is_all_zero(self):
        rng = np.random.default_rng(0)
        draws = sample_rollbacks_batch(0.0, [10_000, 50_000], rng, 5)
        assert not draws.any()

    def test_hopeless_segments_hit_the_cap(self):
        # q = (1-p)^n underflows to 0 for this (p, n): the scalar sampler
        # returns the cap without drawing, and so must every batched entry.
        rng = np.random.default_rng(0)
        draws = sample_rollbacks_batch(0.5, [10_000], rng, 4, cap=123)
        assert (draws == 123).all()

    def test_matches_scalar_stream_run_major(self):
        # The documented draw-order contract: one geometric call in C
        # (run-major) order consumes the stream exactly like the nest of
        # scalar calls, so the two are bit-identical at the same seed.
        from repro.core import sample_rollbacks

        segments = [40_000, 120_000, 260_000]
        p = 3e-6
        batched = sample_rollbacks_batch(
            p, segments, np.random.default_rng(42), 50
        )
        rng = np.random.default_rng(42)
        scalar = np.array(
            [[sample_rollbacks(p, c, rng) for c in segments] for _ in range(50)]
        )
        assert np.array_equal(batched, scalar)

    def test_sample_mean_tracks_analytic_mean(self):
        p, n_c = 1e-5, 150_000
        rng = np.random.default_rng(3)
        draws = sample_rollbacks_batch(p, [n_c], rng, 20_000)
        mean = expected_rollbacks(p, n_c)
        assert abs(draws.mean() - mean) < 0.1 * mean

    def test_needs_at_least_one_run(self):
        with pytest.raises(ValueError):
            sample_rollbacks_batch(1e-6, [10_000], np.random.default_rng(0), 0)


class TestSampleSegmentsBatch:
    def test_totals_follow_scalar_formula(self):
        cp = CheckpointSystem(1e-5, checkpoint_cycles=75, rollback_cycles=31)
        segments = [40_000, 90_000, 260_000]
        n_rb, totals = cp.sample_segments_batch(
            segments, np.random.default_rng(1), 16
        )
        assert n_rb.shape == totals.shape == (16, 3)
        for i in range(16):
            for j, seg in enumerate(segments):
                assert totals[i, j] == cp.segment_cycles_with_rollbacks(
                    seg, int(n_rb[i, j])
                )

    def test_matches_scalar_sample_segment_stream(self):
        cp = CheckpointSystem(3e-6)
        segments = [40_000, 120_000]
        n_rb, totals = cp.sample_segments_batch(
            segments, np.random.default_rng(9), 30
        )
        rng = np.random.default_rng(9)
        for i in range(30):
            for j, seg in enumerate(segments):
                rb, total = cp.sample_segment(seg, rng)
                assert n_rb[i, j] == rb
                assert totals[i, j] == total


class _ReplayRNG:
    """RNG stub replaying prescribed geometric draws to the scalar path."""

    def __init__(self, rollback_row):
        # sample_rollbacks subtracts 1 from rng.geometric's trial count.
        self._draws = iter(int(rb) + 1 for rb in rollback_row)

    def geometric(self, q):
        return next(self._draws)


class TestSimulateRunsBatch:
    """Per-run equivalence: feed the batch's own rollback draws through
    the scalar ``simulate_run`` and demand identical statistics — this
    pins the masked early-exit to the scalar break semantics."""

    def _assert_rows_match_scalar(self, workload, cp, policy, batch, n_rb):
        for i in range(len(batch)):
            run = simulate_run(workload, cp, policy, _ReplayRNG(n_rb[i]))
            assert run.deadline == pytest.approx(batch.deadline, rel=1e-12)
            assert run.finish_time == pytest.approx(
                batch.finish_times[i], rel=1e-9
            )
            assert run.rollbacks_per_segment == pytest.approx(
                batch.rollbacks_per_segment[i], rel=1e-12
            )
            assert run.mean_speed == pytest.approx(
                batch.mean_speeds[i], rel=1e-9
            )
            assert run.energy == pytest.approx(batch.energies[i], rel=1e-9)
            assert run.deadline_met == batch.deadline_met[i]

    @pytest.mark.parametrize("p", [0.0, 1e-7, 3e-6, 1e-5, 1e-4])
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_rows_match_scalar_replay(self, p, policy):
        workload = adpcm_like_workload(n_segments=12, seed=0)
        cp = CheckpointSystem(p)
        rng = np.random.default_rng(17)
        n_rb, _ = cp.sample_segments_batch(workload.segment_cycles, rng, 40)
        batch = simulate_runs_batch(
            workload, cp, policy, np.random.default_rng(17), 40
        )
        self._assert_rows_match_scalar(workload, cp, policy, batch, n_rb)

    def test_rows_match_scalar_replay_nondefault_costs(self):
        workload = adpcm_like_workload(n_segments=6, seed=2)
        cp = CheckpointSystem(1e-5, checkpoint_cycles=500, rollback_cycles=900)
        rng = np.random.default_rng(5)
        n_rb, _ = cp.sample_segments_batch(workload.segment_cycles, rng, 25)
        batch = simulate_runs_batch(
            workload, cp, WCET, np.random.default_rng(5), 25
        )
        self._assert_rows_match_scalar(workload, cp, WCET, batch, n_rb)

    def test_error_free_runs_all_meet_deadline(self):
        workload = adpcm_like_workload(seed=0)
        cp = CheckpointSystem(0.0)
        for policy in ALL_POLICIES:
            batch = simulate_runs_batch(
                workload, cp, policy, np.random.default_rng(0), 10
            )
            assert batch.deadline_met.all()
            assert len(batch) == 10

    def test_stateful_policy_rejected(self):
        workload = adpcm_like_workload(seed=0)
        with pytest.raises(TypeError, match="scalar"):
            simulate_runs_batch(
                workload,
                CheckpointSystem(1e-6),
                AdaptiveBudgetPolicy(),
                np.random.default_rng(0),
                4,
            )

    def test_needs_at_least_one_run(self):
        with pytest.raises(ValueError):
            simulate_runs_batch(
                adpcm_like_workload(seed=0),
                CheckpointSystem(1e-6),
                DS,
                np.random.default_rng(0),
                0,
            )


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(st.integers(1_000, 300_000), min_size=1, max_size=8),
    log10_p=st.floats(-8.0, -3.0),
    scale=st.floats(1.0, 3.0),
    slack=st.floats(0.0, 0.5),
)
def test_property_deadline_met_never_contradicts_finish_time(
    segments, log10_p, scale, slack
):
    """``deadline_met`` may never be claimed past the deadline."""
    workload = SegmentedWorkload("prop", segments, deadline_slack=slack)
    policy = BudgetPolicy(name="prop", scale=scale)
    batch = simulate_runs_batch(
        workload,
        CheckpointSystem(10.0**log10_p),
        policy,
        np.random.default_rng(0),
        8,
    )
    late = batch.finish_times > batch.deadline + 1e-9
    assert not (batch.deadline_met & late).any()
    assert (batch.finish_times > 0).all()
    assert (batch.energies > 0).all()
    assert (batch.rollbacks_per_segment >= 0).all()


class TestMonteCarloDispatch:
    @pytest.fixture()
    def workload(self):
        return adpcm_like_workload(n_segments=12, seed=0)

    def test_default_studies_dispatch_batched(self, workload):
        study = MonteCarloStudy(workload, n_runs=10, seed=0)
        assert study._resolved_kernel() == "batched"
        assert study._fingerprint()["kernel"] == "batched"

    def test_scalar_kernel_forces_reference_path(self, workload):
        study = MonteCarloStudy(workload, n_runs=10, seed=0, kernel="scalar")
        assert study._resolved_kernel() == "scalar"
        assert study._fingerprint()["kernel"] == "scalar"

    def test_unknown_kernel_rejected(self, workload):
        with pytest.raises(ValueError):
            MonteCarloStudy(workload, kernel="simd")

    def test_fig5_statistic_bit_identical(self, workload):
        # The Fig. 5 stream has no early exit, so batched == scalar exactly.
        batched = MonteCarloStudy(workload, n_runs=50, seed=0)
        scalar = MonteCarloStudy(workload, n_runs=50, seed=0, kernel="scalar")
        for p in (1e-7, 1e-6, 1e-5):
            assert (
                batched.run_level(p).mean_rollbacks_per_segment
                == scalar.run_level(p).mean_rollbacks_per_segment
            )

    def test_hit_rates_within_mc_tolerance(self, workload):
        batched = MonteCarloStudy(workload, n_runs=200, seed=0)
        scalar = MonteCarloStudy(workload, n_runs=200, seed=0, kernel="scalar")
        for p in (1e-8, 1e-6, 3e-6, 1e-4):
            pb, ps = batched.run_level(p), scalar.run_level(p)
            for name in pb.hit_rate:
                assert pb.hit_rate[name] == pytest.approx(
                    ps.hit_rate[name], abs=0.12
                )
                assert pb.mean_energy[name] == pytest.approx(
                    ps.mean_energy[name], rel=0.15
                )

    def test_analytic_curves_bit_identical(self, workload):
        batched = MonteCarloStudy(workload, n_runs=10, seed=0)
        scalar = MonteCarloStudy(workload, n_runs=10, seed=0, kernel="scalar")
        probs = [1e-8, 1e-6, 1e-4]
        assert np.array_equal(
            batched.analytic_rollbacks(probs), scalar.analytic_rollbacks(probs)
        )

    def test_stateful_policies_fall_back_to_scalar(self, workload):
        auto = MonteCarloStudy(
            workload, policies=(AdaptiveBudgetPolicy(),), n_runs=10, seed=0
        )
        forced = MonteCarloStudy(
            workload,
            policies=(AdaptiveBudgetPolicy(),),
            n_runs=10,
            seed=0,
            kernel="scalar",
        )
        assert auto._resolved_kernel() == "scalar"
        pa, pf = auto.run_level(3e-6), forced.run_level(3e-6)
        assert pa.hit_rate == pf.hit_rate
        assert pa.mean_energy == pf.mean_energy
        assert pa.mean_rollbacks_per_segment == pf.mean_rollbacks_per_segment

    def test_batched_kernel_demands_stateless_policies(self, workload):
        study = MonteCarloStudy(
            workload, policies=(AdaptiveBudgetPolicy(),), kernel="batched"
        )
        with pytest.raises(ValueError, match="frozen"):
            study.run_level(1e-6)

    def test_kernels_use_distinct_cache_fingerprints(self, workload):
        batched = MonteCarloStudy(workload, n_runs=10, seed=0)
        scalar = MonteCarloStudy(workload, n_runs=10, seed=0, kernel="scalar")
        assert batched._fingerprint() != scalar._fingerprint()

    def test_sweep_matches_per_level_runs(self, workload):
        study = MonteCarloStudy(workload, n_runs=20, seed=0)
        probs = [1e-7, 3e-6]
        points = study.sweep(probs, jobs=1, cache=None)
        for p, pt in zip(probs, points):
            direct = study.run_level(p)
            assert pt.hit_rate == direct.hit_rate
            assert pt.mean_rollbacks_per_segment == (
                direct.mean_rollbacks_per_segment
            )
