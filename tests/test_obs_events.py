"""Tests for the campaign flight recorder (repro.obs.events)."""

import json
import os
from collections import Counter

import pytest

from repro import obs
from repro.obs import RunRecorder, load_run_record, read_events, trial_rows
from repro.obs.events import (
    EVENTS_FILENAME,
    EVENTS_SCHEMA,
    MAX_BUFFERED_EVENTS,
    EventLog,
    iter_events,
)
from repro.runtime import CampaignRunner, FaultPolicy


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with collection off and state empty."""
    obs.disable()
    obs.reset()
    yield
    obs.EVENTS.unbind()
    obs.disable()
    obs.reset()


def _event_chunk(chunk):
    """Module-level worker emitting one event per chunk (picklable)."""
    obs.emit("test.chunk", trials=len(chunk))
    return [float(rng.random()) for rng in chunk.rngs()]


class TestEventLog:
    def test_disabled_emit_is_noop(self):
        log = EventLog()
        log.emit("unit.finish", unit=0)
        assert log.emitted == 0
        assert log.drain() == []

    def test_emit_carries_standard_fields(self):
        log = EventLog()
        log.enabled = True
        log.emit("unit.finish", unit=3, trials=8)
        (event,) = log.drain()
        assert event["ev"] == "unit.finish"
        assert event["pid"] == os.getpid()
        assert event["t"] > 0
        assert event["unit"] == 3 and event["trials"] == 8
        assert log.emitted == 1

    def test_sinkless_buffer_caps_and_counts_drops(self, monkeypatch):
        monkeypatch.setattr("repro.obs.events.MAX_BUFFERED_EVENTS", 4)
        log = EventLog()
        log.enabled = True
        for i in range(7):
            log.emit("cache.miss", unit=i)
        assert len(log.drain()) == 4
        assert log.emitted == 7
        assert log.dropped == 3

    def test_default_cap_is_generous(self):
        assert MAX_BUFFERED_EVENTS >= 2 ** 16

    def test_bind_drains_buffer_and_writes_through(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        log = EventLog()
        log.enabled = True
        log.emit("campaign.begin", trials=10)
        log.bind(path)
        log.emit("campaign.end")
        log.flush()
        events = read_events(path)
        assert [e["ev"] for e in events] == ["campaign.begin", "campaign.end"]
        assert log.bound
        assert log.drain() == []  # everything went to the sink
        log.unbind()
        assert not log.bound

    def test_unbound_log_keeps_collecting(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        log = EventLog()
        log.enabled = True
        log.bind(path)
        log.emit("stream.open")
        log.unbind()
        log.emit("unit.finish", unit=0)
        assert [e["ev"] for e in log.drain()] == ["unit.finish"]
        assert [e["ev"] for e in read_events(path)] == ["stream.open"]

    def test_absorb_preserves_worker_time_and_pid(self):
        log = EventLog()
        log.enabled = True
        worker_event = {"ev": "test.chunk", "t": 123.5, "pid": 99999}
        log.absorb([worker_event])
        (event,) = log.drain()
        assert event["t"] == 123.5
        assert event["pid"] == 99999
        assert log.emitted == 1

    def test_reset_clears_counters_but_keeps_sink(self, tmp_path):
        log = EventLog()
        log.enabled = True
        log.bind(tmp_path / EVENTS_FILENAME)
        log.emit("stream.open")
        log.reset()
        assert log.emitted == 0
        assert log.bound


class TestTornTailReader:
    def test_iter_events_stops_at_torn_tail(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        lines = [
            json.dumps({"ev": "stream.open", "t": 1.0, "pid": 1}),
            json.dumps({"ev": "unit.finish", "t": 2.0, "pid": 1}),
        ]
        path.write_text("\n".join(lines) + '\n{"ev": "unit.fin')  # torn
        events = list(iter_events(path))
        assert [e["ev"] for e in events] == ["stream.open", "unit.finish"]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        path.write_text('{"ev": "a"}\n\n{"ev": "b"}\n')
        assert [e["ev"] for e in iter_events(path)] == ["a", "b"]


class TestTrialRows:
    def test_flattens_frames_in_order(self):
        events = [
            {"ev": "fi.trials", "items": [[1, "reg3", 7, "masked"],
                                          [2, "pc", 0, "crash"]]},
            {"ev": "unit.finish", "unit": 0},
            {"ev": "fi.trials", "items": [[3, "reg1", 2, "sdc"]]},
        ]
        assert trial_rows(events) == [
            (1, "reg3", 7, "masked"),
            (2, "pc", 0, "crash"),
            (3, "reg1", 2, "sdc"),
        ]


class TestCaptureAbsorbEvents:
    def test_capture_collects_and_absorb_replays(self):
        obs.enable()
        with obs.capture() as cap:
            obs.emit("test.inner", unit=1)
        assert obs.EVENTS.drain() == []  # nothing leaked into the parent
        obs.absorb(cap.snapshot)
        (event,) = obs.EVENTS.drain()
        assert event["ev"] == "test.inner"

    def test_capture_restores_parent_buffer(self):
        obs.enable()
        obs.emit("test.before")
        with obs.capture() as cap:
            obs.emit("test.during")
        events = obs.EVENTS.drain()
        assert [e["ev"] for e in events] == ["test.before"]
        assert [e["ev"] for e in cap.snapshot["events"]] == ["test.during"]
        # Restoring must not double-count the pre-capture event.
        assert obs.EVENTS.emitted == 2

    def test_nested_captures_partition_events(self):
        obs.enable()
        with obs.capture() as outer:
            obs.emit("test.outer.1")
            with obs.capture() as inner:
                obs.emit("test.inner")
            obs.absorb(inner.snapshot)
            obs.emit("test.outer.2")
        assert [e["ev"] for e in outer.snapshot["events"]] == [
            "test.outer.1", "test.inner", "test.outer.2"
        ]
        assert obs.EVENTS.drain() == []

    def test_pool_workers_events_reach_parent_stream(self):
        obs.enable()
        CampaignRunner(jobs=2, chunk_size=8).run_trials(_event_chunk, 32, seed=3)
        events = obs.EVENTS.drain()
        chunk_events = [e for e in events if e["ev"] == "test.chunk"]
        assert len(chunk_events) == 4  # 32 trials / chunk_size 8
        assert sum(e["trials"] for e in chunk_events) == 32
        assert {e["ev"] for e in events} >= {
            "campaign.begin", "campaign.end", "unit.submit", "unit.finish",
            "worker.spawn", "worker.heartbeat",
        }


class TestRunnerEvents:
    def test_serial_campaign_event_sequence(self):
        obs.enable()
        CampaignRunner(jobs=1, chunk_size=8).run_trials(_event_chunk, 16, seed=0)
        events = obs.EVENTS.drain()
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "campaign.begin"
        assert kinds[-1] == "campaign.end"
        assert kinds.count("unit.submit") == 2
        assert kinds.count("unit.finish") == 2
        end = events[-1]
        assert end["executed_trials"] == 16
        assert end["retries"] == 0

    def test_cache_hits_and_misses_are_events(self, tmp_path):
        from repro.runtime import ResultCache

        obs.enable()
        cache = ResultCache(tmp_path)
        CampaignRunner(chunk_size=8, cache=cache).run_trials(
            _event_chunk, 16, seed=0, key=("ev",)
        )
        first = Counter(e["ev"] for e in obs.EVENTS.drain())
        assert first["cache.miss"] == 2
        assert first["cache.hit"] == 0
        CampaignRunner(chunk_size=8, cache=cache).run_trials(
            _event_chunk, 16, seed=0, key=("ev",)
        )
        second = Counter(e["ev"] for e in obs.EVENTS.drain())
        assert second["cache.hit"] == 2
        assert second["cache.miss"] == 0

    def test_retry_events_carry_attempt_and_error(self):
        attempts = {"n": 0}

        def flaky(item):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise ValueError("transient")
            return item

        obs.enable()
        runner = CampaignRunner(
            jobs=1, policy=FaultPolicy(max_retries=2, backoff_base_s=0.0)
        )
        runner.map(flaky, [1, 2])
        retries = [e for e in obs.EVENTS.drain() if e["ev"] == "unit.retry"]
        (retry,) = retries
        assert retry["unit"] == 0
        assert retry["attempt"] == 1
        assert retry["error"] == "ValueError"


class TestRecorderEventStream:
    def test_recorder_writes_events_jsonl(self, tmp_path):
        with RunRecorder(tmp_path, name="ev", config={}) as recorder:
            obs.emit("test.custom", value=1)
        events = read_events(recorder.events_path)
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "stream.open"
        assert kinds[-1] == "stream.close"
        assert "test.custom" in kinds
        (open_event,) = [e for e in events if e["ev"] == "stream.open"]
        assert open_event["schema"] == EVENTS_SCHEMA
        assert open_event["run_id"] == recorder.run_id
        record = load_run_record(recorder.run_dir)
        assert record["meta"]["events_file"] == EVENTS_FILENAME
        assert record["meta"]["events_emitted"] == len(events)
        assert record["meta"]["events_dropped"] == 0

    def test_stream_close_carries_error_status(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunRecorder(tmp_path, name="boom") as recorder:
                raise RuntimeError("nope")
        (close,) = [e for e in read_events(recorder.events_path)
                    if e["ev"] == "stream.close"]
        assert close["status"] == "error: RuntimeError"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fi_campaign_rows_reconcile_with_histogram(self, tmp_path, jobs):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.fibonacci(6))
        with RunRecorder(tmp_path, name="fi") as recorder:
            injector.run_campaign(n_trials=48, seed=0, jobs=jobs, chunk_size=16)
        record = load_run_record(recorder.run_dir)
        events = read_events(recorder.events_path)
        rows = trial_rows(events)
        assert len(rows) == 48
        histogram = record["outcomes"]["histogram"]
        assert Counter(r[3] for r in rows) == Counter(histogram)
        ladders = [e for e in events if e["ev"] == "fi.ladder"]
        # The injector was built before recording started, so only the
        # trial frames are present; coordinates must be complete tuples.
        assert all(len(r) == 4 for r in rows)
        assert ladders == []

    def test_fi_ladder_event_when_built_under_recording(self, tmp_path):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        with RunRecorder(tmp_path, name="fi") as recorder:
            injector = FaultInjector(P.fibonacci(6))
        (ladder,) = [e for e in read_events(recorder.events_path)
                     if e["ev"] == "fi.ladder"]
        assert ladder["engine"] == injector.engine
        assert ladder["golden_cycles"] == injector.golden_cycles
        assert ladder["snapshots"] == len(injector._snapshots)

    def test_engine_rows_are_identical_across_engines(self, tmp_path):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        rows_by_engine = {}
        for engine in ("batched", "forked"):
            injector = FaultInjector(P.fibonacci(6), engine=engine)
            with RunRecorder(tmp_path / engine, name="fi") as recorder:
                injector.run_campaign(n_trials=32, seed=1)
            rows_by_engine[engine] = trial_rows(
                read_events(recorder.events_path)
            )
        assert rows_by_engine["batched"] == rows_by_engine["forked"]
        assert len(rows_by_engine["batched"]) == 32
