"""Property-based tests (hypothesis) for the sequential-stopping stats.

The steering layer stops a campaign when a Wilson interval gets tight
enough (docs/steering.md); these tests pin the interval's invariants —
containment, monotonicity in ``n`` — and check that the sequential
stopping rule keeps near-nominal coverage on simulated Bernoulli
streams, which is the property the early-stop contract rests on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    hoeffding_halfwidth,
    stratified_estimate,
    wilson_halfwidth,
    wilson_interval,
)
from repro.runtime.stats import normal_quantile, z_value


class TestNormalQuantile:
    def test_known_points(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-5)

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=40, deadline=None)
    def test_inverts_cdf(self, p):
        x = normal_quantile(p)
        assert 0.5 * (1 + math.erf(x / math.sqrt(2))) == pytest.approx(
            p, abs=1e-9
        )

    def test_rejects_endpoints(self):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                normal_quantile(bad)


class TestWilsonInterval:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=80, deadline=None)
    def test_contained_in_unit_interval_and_brackets_p_hat(
        self, successes, n, confidence
    ):
        successes = min(successes, n)
        lo, hi = wilson_interval(successes, n, confidence)
        p_hat = successes / n
        assert 0.0 <= lo <= p_hat <= hi <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=5_000),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_halfwidth_monotone_in_n_at_fixed_rate(self, p_hat, n, factor):
        # More observations at the same rate can only tighten the CI.
        small = wilson_halfwidth(p_hat * n, n)
        large = wilson_halfwidth(p_hat * n * factor, n * factor)
        assert large <= small + 1e-12

    def test_vacuous_at_n_zero(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)
        with pytest.raises(ValueError):
            wilson_interval(0, -1)


class TestHoeffding:
    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_bounded_and_looser_than_wilson_needs_no_rate(self, n):
        hw = hoeffding_halfwidth(n)
        assert 0.0 < hw <= 1.0
        assert hoeffding_halfwidth(4 * n) <= hw

    def test_exact_form(self):
        n = 200
        expected = math.sqrt(math.log(2 / 0.05) / (2 * n))
        assert hoeffding_halfwidth(n, 0.95) == pytest.approx(expected)


class TestStratifiedEstimate:
    def test_single_stratum_matches_plain_rate(self):
        estimate, hw = stratified_estimate([1.0], [30], [100])
        assert estimate == pytest.approx(0.3)
        assert hw > 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50),  # weight share
                st.integers(min_value=1, max_value=200),  # n_s
                st.floats(min_value=0.0, max_value=1.0),  # rate
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_is_weighted_mean_in_unit_interval(self, strata):
        total = sum(w for w, _, _ in strata)
        weights = [w / total for w, _, _ in strata]
        counts = [n for _, n, _ in strata]
        failures = [round(n * r) for _, n, r in strata]
        estimate, hw = stratified_estimate(weights, failures, counts)
        expected = sum(
            q * f / n for q, f, n in zip(weights, failures, counts)
        )
        assert estimate == pytest.approx(min(max(expected, 0.0), 1.0))
        assert 0.0 <= estimate <= 1.0 and hw >= 0.0

    def test_allocation_invariance_of_the_estimate(self):
        # Doubling one stratum's sample at the same rate moves the
        # variance, never the estimate (post-stratification).
        base, _ = stratified_estimate([0.5, 0.5], [10, 40], [100, 100])
        skewed, _ = stratified_estimate([0.5, 0.5], [20, 40], [200, 100])
        assert skewed == pytest.approx(base)

    def test_variance_rates_tighten_degenerate_strata(self):
        # A 0/n stratum claims Jeffreys variance by default; a model
        # rate of exactly 0 removes it.
        _, default_hw = stratified_estimate([0.5, 0.5], [0, 50], [100, 100])
        _, model_hw = stratified_estimate(
            [0.5, 0.5], [0, 50], [100, 100], variance_rates=[0.0, 0.5]
        )
        assert model_hw < default_hw

    def test_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            stratified_estimate([0.5, 0.4], [1, 1], [10, 10])
        with pytest.raises(ValueError, match="observation"):
            stratified_estimate([0.5, 0.5], [1, 0], [10, 0])
        with pytest.raises(ValueError, match="align"):
            stratified_estimate([1.0], [1], [10], variance_rates=[0.1, 0.2])
        with pytest.raises(ValueError, match="align"):
            stratified_estimate([1.0], [1, 2], [10])


class TestSequentialStoppingCoverage:
    @pytest.mark.parametrize("p_true", [0.05, 0.3, 0.5])
    def test_near_nominal_coverage_on_bernoulli_streams(self, p_true):
        """Stop each stream when the 95% Wilson half-width hits 0.05;
        the stopped interval must still cover p_true near-nominally.

        Sequential (optional) stopping eats some coverage relative to a
        fixed-n interval, so the floor is 0.88, not 0.95.  The streams
        are a fixed-seed simulation: the check is deterministic.
        """
        rng = np.random.default_rng(20260807)
        streams, batch, target = 300, 64, 0.05
        covered = 0
        for _ in range(streams):
            successes = n = 0
            while True:
                draws = rng.random(batch) < p_true
                successes += int(draws.sum())
                n += batch
                if wilson_halfwidth(successes, n) <= target or n >= 8192:
                    break
            lo, hi = wilson_interval(successes, n)
            covered += lo <= p_true <= hi
        assert covered / streams >= 0.88
