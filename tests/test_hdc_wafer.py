"""Tests for wafer-map defect classification with HDC (ref [17])."""

import numpy as np
import pytest

from repro.hdc.wafer import (
    PATTERN_CLASSES,
    WaferHDCClassifier,
    WaferHDCEncoder,
    WaferMapGenerator,
)
from repro.ml import train_test_split


@pytest.fixture(scope="module")
def dataset():
    gen = WaferMapGenerator(side=20, seed=0)
    maps, labels = gen.dataset(n_per_class=30)
    idx = np.arange(len(maps))
    tr, te, ytr, yte = train_test_split(idx, labels, test_size=0.3, seed=0)
    return maps, tr, te, ytr, yte


@pytest.fixture(scope="module")
def fitted(dataset):
    maps, tr, te, ytr, yte = dataset
    return WaferHDCClassifier(side=20, dim=4096, seed=0).fit(maps[tr], ytr)


class TestWaferMapGenerator:
    def test_maps_respect_disc_mask(self):
        gen = WaferMapGenerator(side=16, seed=1)
        for pattern in PATTERN_CLASSES:
            wafer = gen.generate(pattern)
            assert not np.any(wafer & ~gen.disc_mask)

    def test_center_pattern_concentrated(self):
        gen = WaferMapGenerator(side=20, seed=2)
        wafer = gen.generate("center")
        inner = wafer[gen._radius < 0.3 * 10]
        outer = wafer[(gen._radius > 0.5 * 10) & gen.disc_mask]
        assert inner.mean() > 3 * max(outer.mean(), 0.01)

    def test_random_denser_than_none(self):
        gen = WaferMapGenerator(side=20, seed=3)
        dense = np.mean([gen.generate("random").sum() for _ in range(10)])
        sparse = np.mean([gen.generate("none").sum() for _ in range(10)])
        assert dense > 3 * sparse

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            WaferMapGenerator().generate("spiral")

    def test_dataset_shapes(self):
        gen = WaferMapGenerator(side=12, seed=4)
        maps, labels = gen.dataset(n_per_class=5)
        assert maps.shape == (5 * len(PATTERN_CLASSES), 12, 12)
        assert len(np.unique(labels)) == len(PATTERN_CLASSES)

    def test_small_side_rejected(self):
        with pytest.raises(ValueError):
            WaferMapGenerator(side=4)


class TestWaferEncoder:
    def test_wrong_shape_rejected(self):
        enc = WaferHDCEncoder(side=20, dim=256)
        with pytest.raises(ValueError):
            enc.encode(np.zeros((10, 10), dtype=bool))

    def test_similar_patterns_closer_than_different(self):
        gen = WaferMapGenerator(side=20, seed=5)
        enc = WaferHDCEncoder(side=20, dim=4096, seed=0)
        from repro.hdc.hypervector import cosine_similarity

        a1 = enc.encode(gen.generate("center"))
        a2 = enc.encode(gen.generate("center"))
        b = enc.encode(gen.generate("edge_ring"))
        assert cosine_similarity(a1, a2) > cosine_similarity(a1, b)

    def test_empty_map_encodable(self):
        enc = WaferHDCEncoder(side=20, dim=256)
        hv = enc.encode(np.zeros((20, 20), dtype=bool))
        assert np.linalg.norm(hv) > 0  # density term still present


class TestWaferClassifier:
    def test_accuracy(self, dataset, fitted):
        maps, tr, te, ytr, yte = dataset
        acc = float(np.mean(fitted.predict(maps[te]) == yte))
        assert acc > 0.85

    def test_robust_under_errors(self, dataset, fitted):
        maps, tr, te, ytr, yte = dataset
        noisy = fitted.predict(
            maps[te], error_rate=0.3, rng=np.random.default_rng(1)
        )
        assert float(np.mean(noisy == yte)) > 0.6

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WaferHDCClassifier().predict([np.zeros((20, 20), dtype=bool)])

    def test_prototype_shape(self, fitted):
        assert fitted.prototypes_.shape == (
            len(fitted.classes_),
            fitted.encoder.dim,
        )

    def test_structured_classes_well_separated(self, dataset, fitted):
        # Center vs edge-ring are the most geometrically distinct classes;
        # they must not be confused with each other.
        maps, tr, te, ytr, yte = dataset
        pred = fitted.predict(maps[te])
        center, ring = 1, 2  # class indices per PATTERN_CLASSES order
        confusions = np.sum((yte == center) & (pred == ring)) + np.sum(
            (yte == ring) & (pred == center)
        )
        assert confusions <= 1
