"""Tests for run-record diff analytics (repro.obs.diff)."""

from repro.obs.diff import (
    CHI2_CRIT_05,
    chi2_critical,
    diff_records,
    outcome_chi2,
    render_diff,
)


def _record(run_id, histogram, counters=None, config=None, elapsed=1.0):
    return {
        "meta": {"run_id": run_id, "name": f"exp-{run_id}",
                 "elapsed_s": elapsed, "config": config or {}},
        "spans": {"root": {
            "name": "run", "count": 1, "total_s": 0.0, "children": [
                {"name": "runtime.campaign", "count": 1,
                 "total_s": elapsed, "attrs": {}, "children": []},
            ],
        }},
        "metrics": {"counters": counters or {}, "gauges": {},
                    "histograms": {}},
        "outcomes": {"histogram": histogram},
    }


class TestOutcomeChi2:
    def test_strongly_shifted_mix_is_flagged(self):
        stat, df, critical, flagged = outcome_chi2(
            {"masked": 90, "sdc": 10}, {"masked": 10, "sdc": 90}
        )
        assert df == 1
        assert stat > critical
        assert flagged

    def test_identical_histograms_are_not_flagged(self):
        stat, df, critical, flagged = outcome_chi2(
            {"masked": 50, "sdc": 50}, {"masked": 50, "sdc": 50}
        )
        assert stat == 0.0
        assert not flagged

    def test_sampling_noise_is_not_flagged(self):
        stat, _, _, flagged = outcome_chi2(
            {"masked": 52, "sdc": 48}, {"masked": 48, "sdc": 52}
        )
        assert not flagged

    def test_empty_run_is_degenerate(self):
        assert outcome_chi2({}, {"masked": 10}) == (0.0, 0, 0.0, False)
        assert outcome_chi2({"masked": 10}, {}) == (0.0, 0, 0.0, False)

    def test_single_shared_label_is_degenerate(self):
        stat, df, critical, flagged = outcome_chi2(
            {"masked": 5}, {"masked": 7}
        )
        assert df == 0
        assert stat == 0.0
        assert not flagged


class TestChi2Critical:
    def test_tabulated_values_are_exact(self):
        assert chi2_critical(1) == CHI2_CRIT_05[1] == 3.841
        assert chi2_critical(4) == 9.488

    def test_wilson_hilferty_fallback_tracks_the_true_value(self):
        # True 5% critical values beyond the table: df=20 -> 31.410,
        # df=30 -> 43.773.  The approximation must land within 1%.
        for df, true in ((20, 31.410), (30, 43.773)):
            assert abs(chi2_critical(df) - true) / true < 0.01


class TestDiffRecords:
    def test_outcome_deltas_and_rates(self):
        diff = diff_records(
            _record("a", {"masked": 30, "sdc": 10}),
            _record("b", {"masked": 20, "sdc": 10, "crash": 10}),
        )
        assert diff["runs"]["a"]["trials"] == 40
        assert diff["runs"]["b"]["trials"] == 40
        crash = diff["outcomes"]["crash"]
        assert crash["count_a"] == 0 and crash["count_b"] == 10
        assert crash["rate_delta"] == 0.25
        masked = diff["outcomes"]["masked"]
        assert masked["rate_a"] == 0.75 and masked["rate_b"] == 0.5

    def test_counters_report_changed_only(self):
        diff = diff_records(
            _record("a", {"masked": 1},
                    counters={"runtime.fault.retries": 2,
                              "runtime.cache.hits": 5}),
            _record("b", {"masked": 1},
                    counters={"runtime.fault.retries": 6,
                              "runtime.cache.hits": 5}),
        )
        assert set(diff["counters"]) == {"runtime.fault.retries"}
        assert diff["counters"]["runtime.fault.retries"]["delta"] == 4

    def test_config_diff_marks_absent_keys(self):
        diff = diff_records(
            _record("a", {"masked": 1}, config={"engine": "batched",
                                                "trials": 64}),
            _record("b", {"masked": 1}, config={"engine": "forked",
                                                "jobs": 2}),
        )
        assert diff["config"]["engine"] == ("batched", "forked")
        assert diff["config"]["trials"] == (64, "<absent>")
        assert diff["config"]["jobs"] == ("<absent>", 2)

    def test_layer_time_deltas(self):
        diff = diff_records(
            _record("a", {"masked": 1}, elapsed=1.0),
            _record("b", {"masked": 1}, elapsed=3.0),
        )
        assert diff["layers"]["runtime"]["delta_s"] == 2.0


class TestRenderDiff:
    def test_render_has_every_section(self):
        text = render_diff(diff_records(
            _record("a", {"masked": 90, "sdc": 10},
                    counters={"runtime.fault.retries": 1},
                    config={"engine": "batched"}),
            _record("b", {"masked": 10, "sdc": 90},
                    counters={"runtime.fault.retries": 3},
                    config={"engine": "forked"}),
        ))
        assert "== run diff: a (A) vs b (B) ==" in text
        assert "== outcome deltas ==" in text
        assert "DIFFERENT outcome mixes" in text
        assert "== per-layer time deltas ==" in text
        assert "== counter deltas (changed only) ==" in text
        assert "== config diff ==" in text

    def test_identical_runs_render_quietly(self):
        record = _record("a", {"masked": 50, "sdc": 50})
        text = render_diff(diff_records(record, _record("b", {"masked": 50,
                                                              "sdc": 50})))
        assert "no significant outcome shift" in text
        assert "(identical configs)" in text
