"""Tests for device-level models: delay, aging, self-heating."""

import numpy as np
import pytest

from repro.transistor import (
    SelfHeatingModel,
    Transistor,
    aged_transistor,
    alpha_power_delay,
    combined_delta_vth,
    hci_delta_vth,
    nbti_delta_vth,
    waveform_duty_cycle,
)
from repro.transistor.device import saturation_current


class TestTransistor:
    def test_drive_strength_scales_with_width_and_fins(self):
        base = Transistor(width_nm=100, n_fins=2)
        wide = Transistor(width_nm=200, n_fins=2)
        tall = Transistor(width_nm=100, n_fins=4)
        assert wide.drive_strength == pytest.approx(2 * base.drive_strength)
        assert tall.drive_strength == pytest.approx(2 * base.drive_strength)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Transistor(width_nm=0)
        with pytest.raises(ValueError):
            Transistor(n_fins=0)
        with pytest.raises(ValueError):
            Transistor(vth=0.9)  # above VDD

    def test_vth_shift_copy(self):
        t = Transistor()
        aged = t.with_vth_shift(0.05)
        assert aged.vth == pytest.approx(t.vth + 0.05)
        assert t.vth == pytest.approx(0.30)


class TestAlphaPowerDelay:
    def test_delay_increases_with_load(self):
        t = Transistor()
        assert alpha_power_delay(t, 8.0) > alpha_power_delay(t, 2.0)

    def test_delay_increases_with_vth(self):
        t_fresh = Transistor(vth=0.30)
        t_aged = Transistor(vth=0.36)
        assert alpha_power_delay(t_aged, 4.0) > alpha_power_delay(t_fresh, 4.0)

    def test_delay_increases_with_temperature(self):
        t = Transistor()
        assert alpha_power_delay(t, 4.0, temperature_c=125.0) > alpha_power_delay(
            t, 4.0, temperature_c=25.0
        )

    def test_stronger_device_faster(self):
        weak = Transistor(width_nm=100)
        strong = Transistor(width_nm=400)
        assert alpha_power_delay(strong, 4.0) < alpha_power_delay(weak, 4.0)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            alpha_power_delay(Transistor(), 0.0)

    def test_vdd_below_vth_rejected(self):
        with pytest.raises(ValueError):
            alpha_power_delay(Transistor(vth=0.3), 4.0, vdd=0.25)


class TestAging:
    def test_nbti_grows_with_time(self):
        early = nbti_delta_vth(1e6, 0.5, 100.0)
        late = nbti_delta_vth(1e8, 0.5, 100.0)
        assert late > early

    def test_nbti_grows_with_temperature(self):
        cold = nbti_delta_vth(1e7, 0.5, 25.0)
        hot = nbti_delta_vth(1e7, 0.5, 125.0)
        assert hot > cold

    def test_nbti_grows_with_duty(self):
        low = nbti_delta_vth(1e7, 0.1, 100.0)
        high = nbti_delta_vth(1e7, 0.9, 100.0)
        assert high > low

    def test_nbti_magnitude_10y_band(self):
        # ~10 years at 125C, 50 % duty: tens of millivolts.
        dvth = nbti_delta_vth(3.15e8, 0.5, 125.0)
        assert 0.02 < dvth < 0.12

    def test_hci_grows_with_activity_and_vdd(self):
        assert hci_delta_vth(1e7, 0.9, 100.0) > hci_delta_vth(1e7, 0.1, 100.0)
        assert hci_delta_vth(1e7, 0.5, 100.0, vdd=0.9) > hci_delta_vth(
            1e7, 0.5, 100.0, vdd=0.7
        )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            nbti_delta_vth(-1.0, 0.5, 100.0)
        with pytest.raises(ValueError):
            hci_delta_vth(-1.0, 0.5, 100.0)

    def test_pmos_dominated_by_nbti(self):
        pmos = Transistor(is_pmos=True)
        nmos = Transistor(is_pmos=False)
        # Under high duty and low activity, PMOS should age more (NBTI).
        p = combined_delta_vth(pmos, 1e8, duty_cycle=0.9, switching_activity=0.01)
        n = combined_delta_vth(nmos, 1e8, duty_cycle=0.9, switching_activity=0.01)
        assert p > n

    def test_aged_transistor_slower(self):
        t = Transistor(is_pmos=True)
        aged = aged_transistor(t, 3.15e8, temperature_c=125.0)
        assert alpha_power_delay(aged, 4.0) > alpha_power_delay(t, 4.0)

    def test_zero_time_zero_shift(self):
        assert nbti_delta_vth(0.0, 0.5, 100.0) == 0.0


class TestWaveformDutyCycle:
    def test_all_low_is_one(self):
        assert waveform_duty_cycle(np.zeros(10)) == 1.0

    def test_all_high_is_zero(self):
        assert waveform_duty_cycle(np.full(10, 0.8)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            waveform_duty_cycle(np.array([]))


class TestSelfHeating:
    def test_dt_positive(self):
        she = SelfHeatingModel()
        assert she.delta_t(Transistor(), 20.0, 4.0) > 0.0

    def test_dt_grows_with_load_and_slew(self):
        she = SelfHeatingModel()
        t = Transistor()
        assert she.delta_t(t, 20.0, 16.0) > she.delta_t(t, 20.0, 2.0)
        assert she.delta_t(t, 120.0, 4.0) > she.delta_t(t, 10.0, 4.0)

    def test_more_fins_more_confinement(self):
        she = SelfHeatingModel()
        # Same drive strength, different fin counts: more fins trap heat.
        narrow = Transistor(width_nm=200.0, n_fins=2)
        finny = Transistor(width_nm=100.0, n_fins=4)
        assert finny.drive_strength == narrow.drive_strength
        assert she.delta_t(finny, 20.0, 4.0) > she.delta_t(narrow, 20.0, 4.0)

    def test_activity_scales_linearly(self):
        she = SelfHeatingModel()
        t = Transistor()
        full = she.delta_t(t, 20.0, 4.0, activity=1.0)
        half = she.delta_t(t, 20.0, 4.0, activity=0.5)
        assert half == pytest.approx(full / 2)

    def test_cell_dt_is_max_over_devices(self):
        she = SelfHeatingModel()
        weak = Transistor(width_nm=50.0)
        strong = Transistor(width_nm=400.0)
        cell_dt = she.cell_delta_t([weak, strong], 20.0, 4.0)
        assert cell_dt == pytest.approx(she.delta_t(strong, 20.0, 4.0))

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            SelfHeatingModel().cell_delta_t([], 20.0, 4.0)

    def test_negative_condition_rejected(self):
        with pytest.raises(ValueError):
            SelfHeatingModel().delta_t(Transistor(), -1.0, 4.0)

    def test_saturation_current_zero_below_vth(self):
        assert saturation_current(Transistor(vth=0.35), vdd=0.3) == 0.0
