"""Distributed campaign fabric: transport parity, file-queue and tcp
chaos and worker churn, concurrent cache writers, engine-ladder reuse,
and per-worker attribution (repro.runtime.{scheduler,transports} et
al.)."""

import json
import os
import pickle
import selectors
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.runtime import (
    CampaignRunner,
    ChaosSpec,
    ChaosWorker,
    FaultPolicy,
    FileQueueTransport,
    InlineTransport,
    PoolTransport,
    ResultCache,
    TcpTransport,
    create_transport,
)
from repro.runtime.cache import MISS
from repro.runtime.transports import Task
from repro.runtime.transports.fqueue import worker_main
from repro.runtime.transports.tcp import AUTH_ENV, _Conn
from repro.runtime.transports.wire import (
    KIND_MSG,
    WireError,
    client_handshake,
    encode_frame,
    encode_message,
)

from tests.test_runtime import _draw_chunk, _square

#: Fast-retry policy for tests: no real backoff waiting.
FAST = dict(backoff_base_s=0.001, poll_interval_s=0.02)

#: Short heartbeat-staleness so dead-worker detection fits a test budget.
STALE = 2.0


def _reference(n_trials=60, seed=5, chunk_size=6):
    return CampaignRunner(jobs=1, chunk_size=chunk_size).run_trials(
        _draw_chunk, n_trials, seed=seed
    )


def _fqueue_options(tmp_path, workers, **extra):
    options = {
        "queue_dir": str(tmp_path / "queue"),
        "workers": workers,
        "stale_s": STALE,
    }
    options.update(extra)
    return options


class TestTransportRegistry:
    def test_create_transport_by_name(self, tmp_path):
        assert isinstance(create_transport("inline"), InlineTransport)
        assert isinstance(create_transport("pool"), PoolTransport)
        assert isinstance(
            create_transport("fqueue", queue_dir=str(tmp_path / "q")),
            FileQueueTransport,
        )

    def test_unknown_transport_name_lists_known(self):
        with pytest.raises(ValueError, match="inline"):
            create_transport("carrier-pigeon")

    def test_runner_rejects_bad_transport_types(self):
        with pytest.raises(TypeError, match="transport"):
            CampaignRunner(transport=42)
        with pytest.raises(ValueError, match="transport_options"):
            CampaignRunner(transport_options={"workers": 2})

    def test_fqueue_requires_cache(self, tmp_path):
        runner = CampaignRunner(
            jobs=2, transport="fqueue",
            transport_options={"queue_dir": str(tmp_path / "q")},
        )
        with pytest.raises(ValueError, match="cache"):
            runner.run_trials(_draw_chunk, 12, seed=5)

    def test_create_tcp_by_name(self):
        transport = create_transport("tcp", workers=1)
        assert isinstance(transport, TcpTransport)
        transport.shutdown()

    @pytest.mark.parametrize("name,kwargs", [
        ("inline", {"workers": 2}),
        ("pool", {"queue_dir": "/nope"}),
        ("fqueue", {"queue_dir": "/tmp/q", "listen": "host:1"}),
        ("tcp", {"queue_dir": "/nope"}),
    ])
    def test_bad_options_name_the_backend(self, name, kwargs):
        """A kwarg the backend's constructor rejects surfaces as a
        ValueError naming the backend, not a bare TypeError."""
        with pytest.raises(ValueError, match=f"transport {name!r} rejected"):
            create_transport(name, **kwargs)

    def test_tcp_shared_cache_requires_cache(self):
        runner = CampaignRunner(
            jobs=2, transport="tcp",
            transport_options={"workers": 1, "shared_cache": True},
        )
        with pytest.raises(ValueError, match="cache"):
            runner.run_trials(_draw_chunk, 12, seed=5)

    def test_tcp_rejects_malformed_listen_address(self):
        from repro.runtime.transports.tcp import parse_address

        for bad in ("nohost", "host:notaport", "host:-1", ":"):
            with pytest.raises(ValueError):
                parse_address(bad)
        assert parse_address("0.0.0.0:9100") == ("0.0.0.0", 9100)


class TestDescribeRoundTrip:
    """Every backend's describe() record lands in the campaign notes
    (and from there in recorded run documents) with its live config."""

    def _last_note(self):
        notes = obs.campaign_notes()
        assert notes
        return notes[-1]["transport_info"]

    def test_inline_and_pool(self):
        with obs.collecting():
            CampaignRunner(jobs=1).run_trials(_draw_chunk, 6, seed=5)
            assert self._last_note() == {"transport": "inline"}
            CampaignRunner(jobs=2, transport="pool").run_trials(
                _draw_chunk, 12, seed=5
            )
            assert self._last_note() == {"transport": "pool", "workers": 2}

    def test_fqueue(self, tmp_path):
        with obs.collecting():
            CampaignRunner(
                jobs=1, cache=ResultCache(tmp_path / "cache"),
                transport="fqueue",
                transport_options=_fqueue_options(tmp_path, 1),
            ).run_trials(_draw_chunk, 12, seed=5)
            info = self._last_note()
        assert info["transport"] == "fqueue"
        assert info["queue_dir"] == str(tmp_path / "queue")
        assert info["workers"] == 1

    def test_tcp_reports_bound_address(self):
        """The recorded address is the *bound* port, not the 0 the
        transport was configured with."""
        with obs.collecting():
            CampaignRunner(
                jobs=1, policy=FaultPolicy(**FAST), transport="tcp",
                transport_options={"workers": 1},
            ).run_trials(_draw_chunk, 12, seed=5)
            info = self._last_note()
        assert info["transport"] == "tcp"
        host, port = info["address"].rsplit(":", 1)
        assert int(port) > 0
        assert info["workers"] == 1


class TestTransportParity:
    """Every backend must reproduce the inline reference bit-for-bit."""

    def test_pool_matches_inline(self):
        reference = _reference()
        runner = CampaignRunner(jobs=2, chunk_size=6, transport="pool")
        assert runner.run_trials(_draw_chunk, 60, seed=5) == reference
        assert runner.stats.transport == "pool"

    @pytest.mark.parametrize("workers", [1, 4])
    def test_fqueue_matches_inline(self, tmp_path, workers):
        reference = _reference()
        runner = CampaignRunner(
            jobs=workers, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, workers),
        )
        assert runner.run_trials(_draw_chunk, 60, seed=5) == reference
        assert runner.stats.transport == "fqueue"
        assert runner.stats.workers  # outcomes attribute their executor

    def test_fqueue_map_matches_inline(self, tmp_path):
        items = [float(i) for i in range(18)]
        keys = [("i", i) for i in range(18)]
        reference = CampaignRunner(jobs=1).map(
            _square, items, key=("sq",), item_keys=keys
        )
        runner = CampaignRunner(
            jobs=2, cache=ResultCache(tmp_path / "cache"),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 2),
        )
        assert runner.map(_square, items, key=("sq",), item_keys=keys) == reference

    def test_explicit_transport_instance_is_not_shut_down(self, tmp_path):
        transport = FileQueueTransport(
            tmp_path / "queue", workers=1, stale_s=STALE
        )
        try:
            runner = CampaignRunner(
                jobs=1, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
                transport=transport,
            )
            first = runner.run_trials(_draw_chunk, 30, seed=5)
            # The spawned worker survives close() for reuse by a second run.
            assert transport.worker_pids()
            second = CampaignRunner(
                jobs=1, chunk_size=6, cache=ResultCache(tmp_path / "cache2"),
                transport=transport,
            ).run_trials(_draw_chunk, 30, seed=6)
            assert first == _reference(n_trials=30)
            assert second == _reference(n_trials=30, seed=6)
        finally:
            transport.shutdown()
        assert not transport.worker_pids()


class TestFqueueChaos:
    """Deterministic worker kill/hang fates via runtime.chaos: the
    surviving campaign must match the clean inline reference exactly."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_chaos_fates_bit_identical(self, tmp_path, workers):
        reference = _reference(n_trials=40, chunk_size=5)
        spec = ChaosSpec(
            raise_rate=0.2, exit_rate=0.1, hang_rate=0.1, slow_rate=0.1,
            hang_s=0.2, slow_s=0.01, fail_attempts=1, seed=7,
        )
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        runner = CampaignRunner(
            jobs=workers, chunk_size=5, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(max_retries=6, **FAST),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, workers),
        )
        assert runner.run_trials(worker, 40, seed=5) == reference
        assert runner.stats.transport == "fqueue"

    def test_worker_death_requeues_without_retry_penalty(self, tmp_path):
        """A killed claimant's units come back as requeues, not errors:
        a zero-retry policy still completes the campaign."""
        reference = _reference(n_trials=20, chunk_size=4)
        spec = ChaosSpec(exit_rate=0.15, fail_attempts=1, seed=3)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        runner = CampaignRunner(
            jobs=2, chunk_size=4, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(max_retries=0, **FAST),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 2),
        )
        assert runner.run_trials(worker, 20, seed=5) == reference


class TestWorkerChurn:
    """Kill any subset of fqueue workers mid-run: survivors (or a
    --resume) complete bit-identically to the inline reference."""

    def _external_worker(self, queue_dir, worker_id):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", str(queue_dir),
                "--id", worker_id, "--poll", "0.02",
            ],
            stdout=subprocess.DEVNULL,
        )

    def test_survivors_complete_after_midrun_kill(self, tmp_path):
        reference = _reference(n_trials=60, chunk_size=3)
        queue_dir = tmp_path / "queue"
        # Slow every unit down so the kill lands mid-run.
        spec = ChaosSpec(slow_rate=1.0, slow_s=0.05, fail_attempts=10 ** 6)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        transport = FileQueueTransport(queue_dir, workers=0, stale_s=STALE)
        procs = [
            self._external_worker(queue_dir, wid) for wid in ("ext1", "ext2")
        ]
        out = {}

        def run():
            runner = CampaignRunner(
                jobs=2, chunk_size=3, cache=ResultCache(tmp_path / "cache"),
                policy=FaultPolicy(**FAST), transport=transport,
            )
            out["records"] = runner.run_trials(worker, 60, seed=5)
            out["stats"] = runner.stats

        thread = threading.Thread(target=run)
        thread.start()
        try:
            # Wait until the victim has claimed work, then kill it cold.
            deadline = time.monotonic() + 20
            claimed = queue_dir / "claimed"
            while time.monotonic() < deadline:
                if claimed.is_dir() and any(claimed.glob("*@ext1.task")):
                    break
                time.sleep(0.02)
            os.kill(procs[0].pid, signal.SIGKILL)
            procs[0].wait()
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait()
            transport.shutdown()
        assert out["records"] == reference
        assert "ext2" in out["stats"].workers

    def test_midrun_interrupt_then_resume_is_bit_identical(self, tmp_path):
        reference = _reference(n_trials=60, chunk_size=4)
        cache = ResultCache(tmp_path / "cache")

        progressed = []

        def interrupt_after(event):
            progressed.append(event)
            if len(progressed) >= 4:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                jobs=2, chunk_size=4, cache=cache, progress=interrupt_after,
                policy=FaultPolicy(**FAST), transport="fqueue",
                transport_options=_fqueue_options(tmp_path, 2),
            ).run_trials(_draw_chunk, 60, seed=5)
        resumed = CampaignRunner(
            jobs=2, chunk_size=4, cache=cache, resume=True,
            policy=FaultPolicy(**FAST), transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 2),
        )
        assert resumed.run_trials(_draw_chunk, 60, seed=5) == reference
        assert resumed.stats.resumed


def _slow_chunk(chunk):
    """A unit that outlives the heartbeat-staleness budget by itself."""
    time.sleep(2.5)
    return _draw_chunk(chunk)


class TestLivenessProtocol:
    """Heartbeat liveness must not depend on task length, worker-host
    clocks, leftover STOP markers, or a worker-killing unit's patience."""

    def test_unit_slower_than_stale_budget_is_not_requeued(self, tmp_path):
        """The background heartbeat thread keeps a busy worker alive:
        one unit longer than stale_s must execute exactly once, not be
        presumed dead and requeued forever."""
        reference = _reference(n_trials=6, chunk_size=6)
        runner = CampaignRunner(
            jobs=1, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(**FAST), transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 1, stale_s=1.5),
        )
        assert runner.run_trials(_slow_chunk, 6, seed=5) == reference
        assert runner.stats.requeues == 0

    def test_leftover_stop_marker_is_swept_on_open(self, tmp_path):
        """A STOP file surviving a killed shutdown() must not drain
        every worker of the next campaign into a respawn hot loop."""
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        (queue_dir / "STOP").write_text("stop\n")
        runner = CampaignRunner(
            jobs=1, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(**FAST), transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 1),
        )
        assert runner.run_trials(_draw_chunk, 12, seed=5) == _reference(12)
        assert not (queue_dir / "STOP").exists()

    def test_skewed_worker_clock_does_not_void_claims(self, tmp_path):
        """Staleness uses scheduler-local heartbeat arrival times: a
        worker whose wall clock is an hour behind must stay live as
        long as it keeps producing new heartbeat values."""
        queue_dir = tmp_path / "queue"
        transport = FileQueueTransport(queue_dir, workers=0, stale_s=0.3)

        class _Ctx:
            worker = _square
            collect = False
            policy = FaultPolicy()
            cache = ResultCache(tmp_path / "cache")
            jobs = 1

        def skewed_beat(seq):
            (queue_dir / "workers" / "wskew.json").write_text(json.dumps({
                "worker": "wskew", "pid": 12345,
                "t": time.time() - 3600.0 + seq,  # an hour behind, ticking
                "units_done": seq,
            }))

        transport.open(_Ctx())
        try:
            task = Task(task_id="t-skew", indices=(0,), items=(2.0,),
                        digests=("d-skew",))
            transport.submit(task)
            todo = queue_dir / "todo" / "t-skew.task"
            todo.rename(queue_dir / "claimed" / "t-skew@wskew.task")
            skewed_beat(0)
            transport.poll(timeout=0.0)  # observe claim + first heartbeat
            for seq in (1, 2):
                # Longer than stale_s AND the heartbeat-scan throttle
                # (HEARTBEAT_INTERVAL_S / 2), so each poll really does
                # re-read the skewed heartbeat before judging the claim.
                time.sleep(0.6)
                skewed_beat(seq)
                outcomes, _ = transport.poll(timeout=0.0)
                assert not any(o.kind == "requeue" for o in outcomes)
            assert "t-skew" in transport._claims
        finally:
            transport.shutdown()

    def test_worker_killing_unit_exhausts_requeue_budget(self, tmp_path):
        """A unit that deterministically kills its claimant produces
        requeues, not errors; past max_requeues the loss must convert
        into a loud failure instead of a silent respawn loop."""
        spec = ChaosSpec(exit_rate=1.0, fail_attempts=10 ** 6, seed=3)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        runner = CampaignRunner(
            jobs=1, chunk_size=4, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(max_retries=0, max_requeues=1, **FAST),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 1, stale_s=1.5),
        )
        with pytest.raises(RuntimeError, match="requeued"):
            runner.run_trials(worker, 4, seed=5)
        assert runner.stats.requeues == 2  # the cap + the fatal voiding

    def test_policy_rejects_bad_max_requeues(self):
        with pytest.raises(ValueError, match="max_requeues"):
            FaultPolicy(max_requeues=0)
        assert FaultPolicy(max_requeues=None).max_requeues is None


class TestQueueProtocol:
    """Worker-side mechanics of the queue directory."""

    def test_worker_once_drains_published_tasks(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        transport = FileQueueTransport(tmp_path / "queue", workers=0)
        runner = CampaignRunner(
            jobs=1, chunk_size=6, cache=cache, transport=transport,
        )
        out = {}
        thread = threading.Thread(
            target=lambda: out.update(
                records=runner.run_trials(_draw_chunk, 12, seed=5)
            )
        )
        thread.start()
        deadline = time.monotonic() + 20
        todo = tmp_path / "queue" / "todo"
        while time.monotonic() < deadline and not (
            todo.is_dir() and any(todo.glob("*.task"))
        ):
            time.sleep(0.01)
        while thread.is_alive():
            worker_main(tmp_path / "queue", worker_id="wonce", once=True)
            thread.join(timeout=0.05)
        assert out["records"] == _reference(n_trials=12)

    def test_unpicklable_worker_falls_back_to_inline(self, tmp_path):
        """A callable that will not pickle at all trips the scheduler's
        probe, and the campaign completes inline (the pool contract)."""

        def local_worker(chunk):  # closures never pickle
            return [float(i) for i in chunk.indices]

        runner = CampaignRunner(
            jobs=1, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 1),
        )
        records = runner.run_trials(local_worker, 12, seed=5)
        assert records == [float(i) for i in range(12)]
        assert runner.stats.fallback_reason is not None

    def test_unloadable_payload_reports_failure_not_hang(self, tmp_path):
        """A payload that pickles in the scheduler but will not rebuild
        in a worker process must fail the campaign loudly, not hang."""
        runner = CampaignRunner(
            jobs=1, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(max_retries=1, **FAST),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 1),
        )
        with pytest.raises(RuntimeError, match="payload"):
            runner.run_trials(_RemotelyUnloadable(), 12, seed=5)

    def test_stale_done_report_is_ignored(self, tmp_path):
        transport = FileQueueTransport(tmp_path / "queue", workers=0)

        class _Ctx:
            worker = _square
            collect = False
            policy = FaultPolicy()
            cache = ResultCache(tmp_path / "cache")
            jobs = 1

        transport.open(_Ctx())
        done = tmp_path / "queue" / "done"
        (done / "zombie-000001.done").write_bytes(pickle.dumps({
            "task": "zombie-000001", "worker": "wz",
            "units": [{"index": 0, "ok": True, "elapsed_s": 0.0}],
        }))
        outcomes, _ = transport.poll(timeout=0.0)
        assert outcomes == []
        assert not any(done.glob("*.done"))
        transport.shutdown()


class TestCacheConcurrency:
    """Atomic multi-writer semantics of the shared ResultCache."""

    def test_concurrent_writers_leave_only_complete_entries(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_cache, args=(tmp_path / "cache",))
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        cache = ResultCache(tmp_path / "cache")
        for i in range(25):
            assert cache.peek(f"digest-{i:02d}") == [i, i * i]
        assert not list((tmp_path / "cache").glob("*.tmp"))

    def test_losing_the_race_to_a_winner_counts_as_write(self, tmp_path,
                                                         monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        cache.put("d0", "value")  # the racing winner already published
        real_replace = os.replace

        def losing_replace(src, dst):
            if str(dst).endswith("d0.pkl"):
                raise OSError("simulated rename race")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", losing_replace)
        before = cache.stats.as_dict()
        cache.put("d0", "value")
        after = cache.stats.as_dict()
        assert after["writes"] == before["writes"] + 1
        assert after["errors"] == before["errors"]
        assert cache.peek("d0") == "value"

    def test_peek_and_contains_do_not_count(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("d1", 123)
        before = cache.stats.as_dict()
        assert cache.peek("d1") == 123
        assert cache.peek("missing") is MISS
        assert cache.contains("d1")
        assert cache.stats.as_dict() == before


class TestLadderReuse:
    """The FI engine (golden arrays + snapshot ladder) is cached per
    process, so re-pickled injectors stop rebuilding it per task."""

    def test_unpickled_injector_reuses_engine(self):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.checksum(8))
        engine = injector._batched_engine()
        clone = pickle.loads(pickle.dumps(injector))
        assert clone._batched is None  # the engine never travels
        obs.enable()
        obs.reset()
        try:
            assert clone._batched_engine() is engine
            counters = obs.metrics_snapshot()["counters"]
            assert counters["arch.fi.engine.ladder_reuse"] == 1
            # Same records either way.
            a = injector.inject_many([(3, "reg1", 2), (5, "reg2", 7)])
            b = clone.inject_many([(3, "reg1", 2), (5, "reg2", 7)])
            assert [r.outcome for r in a] == [r.outcome for r in b]
        finally:
            obs.disable()
            obs.reset()

    def test_fi_campaign_over_fqueue_matches_inline(self, tmp_path):
        from repro.arch import FaultInjector
        from repro.arch import programs as P

        injector = FaultInjector(P.checksum(8))
        reference = injector.run_campaign(n_trials=48, seed=0, chunk_size=8)
        result = injector.run_campaign(
            n_trials=48, seed=0, chunk_size=8, jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(**FAST),
            transport="fqueue",
            transport_options=_fqueue_options(tmp_path, 2),
        )
        assert result.records == reference.records
        assert injector.last_run_stats.transport == "fqueue"


class TestWorkerAttribution:
    """watch names the worker behind every straggler and heartbeat."""

    def test_watch_attributes_stragglers_to_workers(self):
        from repro.obs.watch import WatchState

        state = WatchState()
        state.consume([
            {"ev": "campaign.begin", "t": 0.0, "trials": 3},
            {"ev": "unit.submit", "t": 0.0, "unit": 0},
            {"ev": "unit.claim", "t": 0.0, "unit": 0, "worker": "w-slow"},
            {"ev": "unit.submit", "t": 0.0, "unit": 1},
            {"ev": "unit.finish", "t": 0.1, "unit": 1, "trials": 1,
             "worker": "w-fast"},
            {"ev": "unit.submit", "t": 0.1, "unit": 2},
            {"ev": "unit.finish", "t": 0.2, "unit": 2, "trials": 1,
             "worker": "w-fast"},
            {"ev": "worker.heartbeat", "t": 0.2, "worker": "w-slow",
             "lag_s": 0.0, "units_done": 0},
        ])
        assert state.stragglers(now=10.0) == [0]
        assert state.straggler_label(0) == "0@w-slow"
        line = state.status_line(now=10.0)
        assert "0@w-slow" in line
        assert set(state.workers) == {"w-slow", "w-fast"}
        event = state.progress_event()
        assert event.workers["w-fast"]["units_done"] == 2

    def test_runner_stats_name_pool_workers(self):
        runner = CampaignRunner(jobs=2, chunk_size=6, transport="pool")
        runner.run_trials(_draw_chunk, 36, seed=5)
        assert runner.stats.workers
        assert all(w.startswith("w") for w in runner.stats.workers)


def _big_chunk(chunk):
    """Worker whose per-unit result pickle exceeds one wire chunk."""
    return [b"\xa5" * (300 * 1024) + i.to_bytes(4, "big") for i in chunk.indices]


class TestTcpParity:
    """The socket transport must reproduce the inline reference exactly,
    with and without a shared cache (the two result channels)."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_tcp_matches_inline_without_cache(self, workers):
        """No cache in common: values stream over the wire."""
        reference = _reference()
        runner = CampaignRunner(
            jobs=workers, chunk_size=6, policy=FaultPolicy(**FAST),
            transport="tcp", transport_options={"workers": workers},
        )
        assert runner.run_trials(_draw_chunk, 60, seed=5) == reference
        assert runner.stats.transport == "tcp"
        assert runner.stats.workers  # outcomes attribute their executor

    def test_tcp_matches_inline_with_shared_cache(self, tmp_path):
        """Shared cache: workers publish values, stored refs on the wire."""
        reference = _reference()
        runner = CampaignRunner(
            jobs=2, chunk_size=6, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(**FAST), transport="tcp",
            transport_options={"workers": 2, "shared_cache": True},
        )
        assert runner.run_trials(_draw_chunk, 60, seed=5) == reference

    def test_tcp_map_matches_inline(self):
        items = [float(i) for i in range(18)]
        reference = CampaignRunner(jobs=1).map(_square, items, key=("sq",))
        runner = CampaignRunner(
            jobs=2, policy=FaultPolicy(**FAST), transport="tcp",
            transport_options={"workers": 2},
        )
        assert runner.map(_square, items, key=("sq",)) == reference

    def test_large_values_stream_in_chunked_frames(self):
        """Result pickles past DEFAULT_CHUNK_BYTES travel chunked and
        reassemble bit-identically."""
        reference = CampaignRunner(jobs=1, chunk_size=3).run_trials(
            _big_chunk, 9, seed=5
        )
        runner = CampaignRunner(
            jobs=2, chunk_size=3, policy=FaultPolicy(**FAST),
            transport="tcp", transport_options={"workers": 2},
        )
        assert runner.run_trials(_big_chunk, 9, seed=5) == reference

    def test_explicit_tcp_instance_is_reused_across_runs(self):
        """close() keeps workers connected; a second campaign reuses
        them without respawning or re-listening."""
        transport = TcpTransport(workers=2)
        try:
            first = CampaignRunner(
                jobs=2, chunk_size=6, policy=FaultPolicy(**FAST),
                transport=transport,
            ).run_trials(_draw_chunk, 30, seed=5)
            pids = transport.worker_pids()
            assert pids
            second = CampaignRunner(
                jobs=2, chunk_size=6, policy=FaultPolicy(**FAST),
                transport=transport,
            ).run_trials(_draw_chunk, 30, seed=6)
            assert transport.worker_pids() == pids
            assert first == _reference(n_trials=30)
            assert second == _reference(n_trials=30, seed=6)
        finally:
            transport.shutdown()
        assert not transport.worker_pids()

    def test_unpicklable_worker_falls_back_to_inline(self):
        runner = CampaignRunner(
            jobs=2, policy=FaultPolicy(**FAST), transport="tcp",
            transport_options={"workers": 2},
        )
        offsets = iter(range(100))  # closure over a generator: not picklable
        records = runner.run_trials(
            lambda chunk: [float(i + next(offsets) * 0) for i in chunk.indices],
            12, seed=5,
        )
        assert records == [float(i) for i in range(12)]
        assert runner.stats.fallback_reason is not None
        assert runner.stats.transport == "tcp"  # the run started on tcp


class TestTcpFaults:
    """Worker death, chaos fates, and interrupt/resume over sockets."""

    def test_chaos_fates_bit_identical(self, tmp_path):
        reference = _reference(n_trials=40, chunk_size=5)
        spec = ChaosSpec(
            raise_rate=0.2, exit_rate=0.1, slow_rate=0.1,
            slow_s=0.01, fail_attempts=1, seed=7,
        )
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        runner = CampaignRunner(
            jobs=4, chunk_size=5, cache=ResultCache(tmp_path / "cache"),
            policy=FaultPolicy(max_retries=6, **FAST),
            transport="tcp", transport_options={"workers": 4},
        )
        assert runner.run_trials(worker, 40, seed=5) == reference

    def test_sigkilled_claimant_requeues_without_retry_penalty(self, tmp_path):
        """SIGKILL a connected worker holding a claim: the disconnect
        voids the claim immediately, survivors finish bit-identically,
        and a zero-retry policy is untouched (requeue, not error)."""
        reference = _reference(n_trials=60, chunk_size=4)
        spec = ChaosSpec(slow_rate=1.0, slow_s=0.03, fail_attempts=10 ** 6)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        transport = TcpTransport(workers=2, queue_depth=1)
        killed = []

        def kill_first_claimant():
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline and not killed:
                holders = transport.claim_holders()
                if holders:
                    victim = sorted(holders)[0]
                    pid = transport.connected_pids().get(victim)
                    if pid:
                        os.kill(pid, signal.SIGKILL)
                        killed.append(victim)
                        return
                time.sleep(0.005)

        killer = threading.Thread(target=kill_first_claimant)
        killer.start()
        try:
            runner = CampaignRunner(
                jobs=2, chunk_size=4,
                policy=FaultPolicy(max_retries=0, **FAST),
                transport=transport,
            )
            records = runner.run_trials(worker, 60, seed=5)
        finally:
            killer.join()
            transport.shutdown()
        assert killed, "no claim was ever observed to kill"
        assert records == reference
        assert runner.stats.requeues >= 1
        assert runner.stats.retries == 0

    def test_midrun_interrupt_then_resume_is_bit_identical(self, tmp_path):
        """SIGINT mid-campaign, then --resume semantics over the SAME
        still-connected transport: the continuation is exact."""
        reference = _reference(n_trials=40, chunk_size=4)
        cache = ResultCache(tmp_path / "cache")
        spec = ChaosSpec(slow_rate=1.0, slow_s=0.02, fail_attempts=10 ** 6)
        worker = ChaosWorker(_draw_chunk, spec, tmp_path / "chaos")
        transport = TcpTransport(workers=2)
        progressed = []

        def interrupt_after(event):
            progressed.append(event)
            if len(progressed) >= 3:
                raise KeyboardInterrupt

        try:
            with pytest.raises(KeyboardInterrupt):
                CampaignRunner(
                    jobs=2, chunk_size=4, cache=cache,
                    progress=interrupt_after, policy=FaultPolicy(**FAST),
                    transport=transport,
                ).run_trials(worker, 40, seed=5)
            resumed = CampaignRunner(
                jobs=2, chunk_size=4, cache=cache, resume=True,
                policy=FaultPolicy(**FAST), transport=transport,
            )
            assert resumed.run_trials(worker, 40, seed=5) == reference
            assert resumed.stats.resumed
        finally:
            transport.shutdown()

    def test_connect_and_disconnect_events_are_emitted(self):
        with obs.collecting():
            CampaignRunner(
                jobs=1, chunk_size=6, policy=FaultPolicy(**FAST),
                transport="tcp", transport_options={"workers": 1},
            ).run_trials(_draw_chunk, 12, seed=5)
            events = obs.EVENTS.drain()
        kinds = [e["ev"] for e in events]
        assert "worker.connect" in kinds
        assert "worker.disconnect" in kinds  # shutdown() drops the conn
        connect = next(e for e in events if e["ev"] == "worker.connect")
        assert connect["worker"]


def _poll_until(transport, predicate, timeout_s=10.0):
    """Drive the transport's poll loop until ``predicate()`` holds."""
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        transport.poll(0.02)
        if predicate():
            return True
    return False


class TestTcpAuth:
    """The handshake gates the pickle layer: nothing an unauthenticated
    peer sends is ever deserialized (the remote-code-execution guard)."""

    def test_unauthenticated_bytes_are_never_unpickled(self, tmp_path):
        """A crafted pickle sent before auth must not execute — the
        connection dies at the frame layer, pickle.loads unreached."""
        marker = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.mkdir, (str(marker),))

        transport = TcpTransport(workers=0)
        try:
            host, port = transport.ensure_listening()
            sock = socket.create_connection((host, port), timeout=5)
            sock.sendall(encode_frame(KIND_MSG, pickle.dumps(Evil())))
            assert _poll_until(transport, lambda: not transport._conns)
            assert not marker.exists()
            sock.close()
        finally:
            transport.shutdown()

    def test_wrong_secret_is_dropped(self):
        transport = TcpTransport(workers=0, auth="right-secret")
        try:
            host, port = transport.ensure_listening()
            sock = socket.create_connection((host, port), timeout=5)
            outcome = {}

            def dial():
                try:
                    client_handshake(sock, "wrong-secret", timeout=5)
                    outcome["ok"] = True
                except (WireError, OSError) as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=dial)
            thread.start()
            deadline = time.time() + 10
            while thread.is_alive() and time.time() < deadline:
                transport.poll(0.02)
            thread.join(timeout=5)
            assert "error" in outcome
            assert not transport._conns
            sock.close()
        finally:
            transport.shutdown()

    def test_right_secret_handshakes_then_helloes(self):
        transport = TcpTransport(workers=0)
        try:
            host, port = transport.ensure_listening()
            sock = socket.create_connection((host, port), timeout=5)
            outcome = {}

            def dial():
                try:
                    client_handshake(sock, transport.auth, timeout=5)
                    sock.sendall(encode_message({
                        "kind": "hello", "worker": "dialer",
                        "pid": os.getpid(),
                    }))
                except (WireError, OSError) as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=dial)
            thread.start()
            assert _poll_until(transport, lambda: any(
                conn.worker_id == "dialer" for conn in transport._conns
            ))
            thread.join(timeout=5)
            assert "error" not in outcome
            sock.close()
        finally:
            transport.shutdown()

    def test_silent_connection_is_reaped_at_the_staleness_horizon(self):
        """A peer that never even answers the challenge (port scanner,
        half-opened client) is dropped, not leaked forever."""
        transport = TcpTransport(workers=0, stale_s=0.2)
        try:
            host, port = transport.ensure_listening()
            sock = socket.create_connection((host, port), timeout=5)
            assert _poll_until(transport, lambda: transport._conns)
            assert _poll_until(transport, lambda: not transport._conns)
            sock.close()
        finally:
            transport.shutdown()


class TestTcpMalformedPeers:
    """Garbage from an *authenticated* peer drops that peer and requeues
    its tasks — it must never abort the scheduler's poll loop."""

    def _transport_with_peer(self):
        transport = TcpTransport(workers=0)
        transport.ensure_listening()
        ours, theirs = socket.socketpair()
        ours.settimeout(0.0)
        conn = _Conn(ours, ("peer", 0))
        conn.authed = True
        conn.worker_id = "rogue"
        transport._conns.append(conn)
        transport._selector.register(ours, selectors.EVENT_READ, conn)
        transport._token = "tok"
        return transport, conn, theirs

    def _submit(self, transport, conn, task_id="t1", indices=(0, 1)):
        task = Task(task_id=task_id, indices=tuple(indices),
                    items=tuple((i,) for i in indices),
                    digests=(None,) * len(indices))
        transport._inflight[task_id] = task
        conn.assigned.add(task_id)
        return task

    @pytest.mark.parametrize("units", [
        [{"ok": True}],                              # no index at all
        [{"index": 99, "ok": True}],                 # index not in the task
        [{"index": 0, "ok": True, "stored": True}],  # no shared cache here
        "not-a-unit-list",                           # wrong field shape
    ])
    def test_malformed_result_drops_peer_and_requeues(self, units):
        transport, conn, theirs = self._transport_with_peer()
        try:
            self._submit(transport, conn)
            theirs.sendall(encode_message({
                "kind": "result", "token": "tok", "task": "t1",
                "worker": "rogue", "units": units,
            }))
            outcomes, _ = transport.poll(2.0)
            assert conn not in transport._conns
            assert {o.index for o in outcomes if o.kind == "requeue"} == {0, 1}
            assert "t1" not in transport._inflight
            assert "t1" not in transport._claims
        finally:
            theirs.close()
            transport.shutdown()

    def test_malformed_heartbeat_drops_peer_not_scheduler(self):
        transport, conn, theirs = self._transport_with_peer()
        try:
            theirs.sendall(encode_message({
                "kind": "heartbeat", "worker": "rogue", "t": "not-a-time",
            }))
            assert _poll_until(transport, lambda: conn not in transport._conns)
        finally:
            theirs.close()
            transport.shutdown()


class TestTcpExternalWorkers:
    """Independently launched ``repro worker --connect`` processes."""

    def _external_worker(self, address, worker_id, auth):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env[AUTH_ENV] = auth
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", address, "--id", worker_id, "--poll", "0.02",
            ],
            env=env, stdout=subprocess.DEVNULL,
        )

    def test_dialed_in_workers_run_the_campaign_then_drain(self):
        """workers=0 scheduler + two external dialers: parity holds and
        a STOP drains both gracefully (exit code 0)."""
        reference = _reference(n_trials=30, chunk_size=3)
        transport = TcpTransport(workers=0)
        host, port = transport.ensure_listening()
        procs = [
            self._external_worker(f"{host}:{port}", wid, transport.auth)
            for wid in ("ext1", "ext2")
        ]
        try:
            runner = CampaignRunner(
                jobs=2, chunk_size=3, policy=FaultPolicy(**FAST),
                transport=transport,
            )
            records = runner.run_trials(_draw_chunk, 30, seed=5)
            assert records == reference
            assert set(runner.stats.workers) & {"ext1", "ext2"}
        finally:
            transport.shutdown()
            codes = []
            for proc in procs:
                try:
                    codes.append(proc.wait(timeout=20))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    codes.append("killed")
        assert codes == [0, 0]  # STOP drained both workers cleanly


def _refuse_rebuild():
    raise RuntimeError("this callable only exists in the scheduler process")


class _RemotelyUnloadable:
    """Pickles by reference fine; explodes when a *worker* rebuilds it."""

    def __reduce__(self):
        return (_refuse_rebuild, ())

    def __call__(self, chunk):
        return [float(i) for i in chunk.indices]


def _hammer_cache(cache_dir):
    """Concurrent-writer body (module-level: forked children import it)."""
    cache = ResultCache(cache_dir)
    for _ in range(20):
        for i in range(25):
            cache.put(f"digest-{i:02d}", [i, i * i])
    raise SystemExit(0)
