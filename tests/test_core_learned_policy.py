"""Tests for the learning-based cycle-noise budget policies."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveBudgetPolicy,
    CheckpointSystem,
    DS,
    MLExecutionTimePredictor,
    WCET,
    adpcm_like_workload,
    quantile_rollbacks,
    simulate_run,
)


class TestQuantileRollbacks:
    def test_zero_error_zero_rollbacks(self):
        assert quantile_rollbacks(0.0, 100_000) == 0

    def test_monotone_in_quantile(self):
        assert quantile_rollbacks(1e-5, 150_000, 0.99) >= quantile_rollbacks(
            1e-5, 150_000, 0.5
        )

    def test_monotone_in_p(self):
        assert quantile_rollbacks(1e-4, 150_000) >= quantile_rollbacks(1e-6, 150_000)

    def test_matches_cdf(self):
        p, n_c = 1e-5, 120_000
        from repro.core import rollback_pmf

        r = quantile_rollbacks(p, n_c, 0.95)
        cdf = sum(rollback_pmf(p, n_c, k) for k in range(r + 1))
        assert cdf >= 0.95
        if r > 0:
            cdf_below = sum(rollback_pmf(p, n_c, k) for k in range(r))
            assert cdf_below < 0.95

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            quantile_rollbacks(1e-5, 1000, quantile=1.0)


class TestAdaptiveBudgetPolicy:
    def test_cold_start_mildly_conservative(self):
        policy = AdaptiveBudgetPolicy()
        ds_budget = DS.budget_cycles(150_000, 100, 48)
        budget = policy.budget_cycles(150_000, 100, 48)
        assert budget >= ds_budget

    def test_estimate_converges(self):
        p_true = 3e-6
        cp = CheckpointSystem(p_true)
        rng = np.random.default_rng(0)
        policy = AdaptiveBudgetPolicy()
        for _ in range(600):
            n_rb, _ = cp.sample_segment(150_000, rng)
            policy.observe(150_000, n_rb)
        assert policy.p_hat == pytest.approx(p_true, rel=0.5)

    def test_budget_grows_with_observed_errors(self):
        policy = AdaptiveBudgetPolicy()
        before = policy.budget_cycles(150_000, 100, 48)
        for _ in range(10):
            policy.observe(150_000, 3)
        after = policy.budget_cycles(150_000, 100, 48)
        assert after > before

    def test_invalid_observation(self):
        with pytest.raises(ValueError):
            AdaptiveBudgetPolicy().observe(0, 1)
        with pytest.raises(ValueError):
            AdaptiveBudgetPolicy().observe(1000, -1)

    def test_pareto_win_inside_window(self):
        """At p inside the wall window: WCET-like hit rate, less energy
        than WCET once the estimate converges (the Sec. V extension)."""
        p = 1e-6
        workload = adpcm_like_workload(n_segments=12, seed=0)
        cp = CheckpointSystem(p)
        policy = AdaptiveBudgetPolicy(quantile=0.98)
        rng = np.random.default_rng(0)
        learned_hits = 0
        learned_energy = []
        for _ in range(60):
            run = simulate_run(workload, cp, policy, rng)
            learned_hits += run.deadline_met
            learned_energy.append(run.energy)

        def baseline(pol):
            r = np.random.default_rng(0)
            hits, energy = 0, []
            for _ in range(60):
                run = simulate_run(workload, cp, pol, r)
                hits += run.deadline_met
                energy.append(run.energy)
            return hits / 60, float(np.mean(energy))

        ds_hit, _ = baseline(DS)
        wcet_hit, wcet_energy = baseline(WCET)
        assert learned_hits / 60 >= wcet_hit - 0.05
        assert learned_hits / 60 > ds_hit + 0.3
        assert float(np.mean(learned_energy)) < wcet_energy


class TestMLExecutionTimePredictor:
    @pytest.fixture(scope="class")
    def predictor(self):
        return MLExecutionTimePredictor(quantile=0.95, seed=0).fit(
            error_probs=(1e-7, 1e-6, 3e-6, 1e-5),
            n_samples=150,
            samples_per_point=40,
        )

    def test_budget_grows_with_p(self, predictor):
        predictor.assume_error_probability(1e-7)
        low = predictor.budget_cycles(150_000, 100, 48)
        predictor.assume_error_probability(1e-5)
        high = predictor.budget_cycles(150_000, 100, 48)
        assert high > low

    def test_budget_at_least_clean(self, predictor):
        predictor.assume_error_probability(1e-7)
        assert predictor.budget_cycles(40_000, 100, 48) >= 40_100

    def test_budget_covers_quantile(self, predictor):
        p, n_c = 3e-6, 200_000
        predictor.assume_error_probability(p)
        budget = predictor.budget_cycles(n_c, 100, 48)
        cp = CheckpointSystem(p)
        rng = np.random.default_rng(1)
        covered = np.mean(
            [cp.sample_segment(n_c, rng)[1] <= budget for _ in range(300)]
        )
        assert covered > 0.8

    def test_unfitted_rejected(self):
        fresh = MLExecutionTimePredictor()
        fresh._p_assumed = 1e-6
        with pytest.raises(RuntimeError):
            fresh.budget_cycles(1000, 100, 48)

    def test_missing_p_rejected(self, predictor):
        fresh = MLExecutionTimePredictor(seed=1).fit((1e-6,), n_samples=20, samples_per_point=10)
        with pytest.raises(RuntimeError):
            fresh.budget_cycles(1000, 100, 48)

    def test_usable_in_simulation(self, predictor):
        predictor.assume_error_probability(1e-6)
        workload = adpcm_like_workload(n_segments=8, seed=1)
        cp = CheckpointSystem(1e-6)
        run = simulate_run(workload, cp, predictor, np.random.default_rng(0))
        assert run.finish_time > 0
