"""Tests for the SPICE-like characterizer (delay and SHE modes)."""

import numpy as np
import pytest

from repro.circuit.cell import make_cell
from repro.circuit.characterization import SpiceLikeCharacterizer
from repro.circuit.library import build_default_library


@pytest.fixture()
def characterizer():
    return SpiceLikeCharacterizer()


class TestArcDelay:
    def test_monotone_in_load(self, characterizer):
        cell = make_cell("INV")
        d_small = characterizer.arc_delay(cell, 20.0, 2.0)
        d_big = characterizer.arc_delay(cell, 20.0, 16.0)
        assert d_big > d_small

    def test_monotone_in_temperature(self, characterizer):
        cell = make_cell("NAND2")
        cold = characterizer.arc_delay(cell, 20.0, 4.0, temperature_c=25.0)
        hot = characterizer.arc_delay(cell, 20.0, 4.0, temperature_c=125.0)
        assert hot > cold

    def test_monotone_in_aging(self, characterizer):
        cell = make_cell("NOR2")
        fresh = characterizer.arc_delay(cell, 20.0, 4.0, delta_vth=0.0)
        aged = characterizer.arc_delay(cell, 20.0, 4.0, delta_vth=0.05)
        assert aged > fresh

    def test_stack_penalty(self, characterizer):
        inv = make_cell("INV")
        nand3 = make_cell("NAND3")
        assert characterizer.arc_delay(nand3, 20.0, 4.0) > characterizer.arc_delay(
            inv, 20.0, 4.0
        )

    def test_she_feedback_slows_cell(self, characterizer):
        cell = make_cell("INV", 8)
        without = characterizer.arc_delay(cell, 80.0, 32.0, include_she=False)
        with_she = characterizer.arc_delay(cell, 80.0, 32.0, include_she=True)
        assert with_she > without

    def test_cost_counter_increments(self, characterizer):
        cell = make_cell("INV")
        before = characterizer.simulated_points
        characterizer.arc_delay(cell, 20.0, 4.0)
        assert characterizer.simulated_points == before + 1


class TestCellCharacterization:
    def test_arcs_created_per_input(self, characterizer):
        cell = make_cell("NAND3")
        characterizer.characterize_cell(cell)
        assert len(cell.arcs) == 3
        assert {a.input_pin for a in cell.arcs} == {"A", "B", "C"}

    def test_table_values_positive(self, characterizer):
        cell = make_cell("XOR2")
        characterizer.characterize_cell(cell)
        for arc in cell.arcs:
            assert np.all(arc.delay.values > 0)
            assert np.all(arc.output_slew.values > 0)

    def test_she_mode_replaces_delay_with_temperature(self, characterizer):
        cell_delay = make_cell("INV", 8)
        cell_she = make_cell("INV", 8)
        characterizer.characterize_cell(cell_delay)
        characterizer.characterize_cell_she(cell_she)
        # SHE tables grow with load like delays but are on a different scale
        # and the slew table passes input slew through unchanged.
        she_arc = cell_she.arcs[0]
        assert she_arc.output_slew(40.0, 4.0) == pytest.approx(40.0)
        assert she_arc.delay(20.0, 32.0) > she_arc.delay(20.0, 1.0)

    def test_characterize_library_all_cells(self, characterizer):
        lib = build_default_library()
        characterizer.characterize_library(lib)
        assert all(cell.arcs for cell in lib)

    def test_corner_shifts_whole_library(self):
        ch = SpiceLikeCharacterizer()
        cool = build_default_library("cool", temperature_c=25.0)
        hot = build_default_library("hot", temperature_c=125.0)
        ch.characterize_library(cool)
        ch.characterize_library(hot)
        for name in ("INV_X1", "NAND2_X2"):
            d_cool = cool.get(name).arcs[0].delay(20.0, 4.0)
            d_hot = hot.get(name).arcs[0].delay(20.0, 4.0)
            assert d_hot > d_cool

    def test_spice_cost_property(self, characterizer):
        cell = make_cell("INV")
        characterizer.characterize_cell(cell)
        expected = len(characterizer.slews) * len(characterizer.loads)
        assert characterizer.spice_cost == pytest.approx(expected)
