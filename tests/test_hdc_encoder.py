"""Tests for HDC encoders."""

import numpy as np
import pytest

from repro.hdc.encoder import ItemMemory, LevelEncoder, NGramEncoder, RecordEncoder
from repro.hdc.hypervector import cosine_similarity


class TestItemMemory:
    def test_stable_mapping(self):
        mem = ItemMemory(dim=512, seed=0)
        assert np.array_equal(mem.get("x"), mem.get("x"))

    def test_distinct_symbols_near_orthogonal(self):
        mem = ItemMemory(dim=8192, seed=1)
        assert abs(cosine_similarity(mem.get("a"), mem.get("b"))) < 0.05

    def test_len_and_contains(self):
        mem = ItemMemory(dim=64, seed=2)
        mem.get("a")
        assert len(mem) == 1 and "a" in mem and "b" not in mem


class TestLevelEncoder:
    def test_adjacent_levels_similar(self):
        enc = LevelEncoder(0.0, 1.0, n_levels=16, dim=8192, seed=0)
        sim_adjacent = cosine_similarity(enc.level_vector(7), enc.level_vector(8))
        sim_extremes = cosine_similarity(enc.level_vector(0), enc.level_vector(15))
        assert sim_adjacent > 0.8
        assert sim_extremes < 0.1

    def test_similarity_decays_monotonically(self):
        enc = LevelEncoder(0.0, 1.0, n_levels=8, dim=8192, seed=1)
        sims = [
            cosine_similarity(enc.level_vector(0), enc.level_vector(k))
            for k in range(8)
        ]
        assert all(sims[i] >= sims[i + 1] - 0.05 for i in range(7))

    def test_clipping_out_of_range(self):
        enc = LevelEncoder(0.0, 1.0, n_levels=4, dim=128, seed=2)
        assert enc.level_of(-10.0) == 0
        assert enc.level_of(10.0) == 3

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            LevelEncoder(1.0, 1.0)

    def test_level_out_of_bounds(self):
        enc = LevelEncoder(0.0, 1.0, n_levels=4, dim=64)
        with pytest.raises(ValueError):
            enc.level_vector(4)


class TestRecordEncoder:
    def test_similar_records_similar_hvs(self):
        enc = RecordEncoder(n_features=4, low=0.0, high=1.0, dim=4096, seed=0)
        a = enc.encode(np.array([0.5, 0.5, 0.5, 0.5]))
        b = enc.encode(np.array([0.52, 0.5, 0.48, 0.5]))
        c = enc.encode(np.array([0.0, 1.0, 0.0, 1.0]))
        assert cosine_similarity(a, b) > cosine_similarity(a, c)

    def test_wrong_length_rejected(self):
        enc = RecordEncoder(n_features=3, low=0.0, high=1.0, dim=128)
        with pytest.raises(ValueError):
            enc.encode(np.array([0.1, 0.2]))

    def test_batch_shape(self):
        enc = RecordEncoder(n_features=2, low=0.0, high=1.0, dim=256)
        out = enc.encode_batch(np.random.default_rng(0).random((5, 2)))
        assert out.shape == (5, 256)

    def test_per_feature_ranges(self):
        enc = RecordEncoder(
            n_features=2, low=np.array([0.0, -5.0]), high=np.array([1.0, 5.0]), dim=256
        )
        hv = enc.encode(np.array([0.5, 0.0]))
        assert hv.shape == (256,)


class TestNGramEncoder:
    def test_identical_sequences_identical(self):
        enc = NGramEncoder(n=3, dim=1024, seed=0)
        a = enc.encode("abcdef")
        b = enc.encode("abcdef")
        assert np.array_equal(a, b)

    def test_order_sensitivity(self):
        enc = NGramEncoder(n=3, dim=8192, seed=1)
        fwd = enc.encode("abcdefgh")
        rev = enc.encode("hgfedcba")
        assert cosine_similarity(fwd, rev) < 0.3

    def test_shared_prefix_increases_similarity(self):
        enc = NGramEncoder(n=2, dim=8192, seed=2)
        a = enc.encode("abcdefgh")
        b = enc.encode("abcdexyz")
        c = enc.encode("qrstuvwx")
        assert cosine_similarity(a, b) > cosine_similarity(a, c)

    def test_too_short_sequence(self):
        enc = NGramEncoder(n=4, dim=64)
        with pytest.raises(ValueError):
            enc.encode("ab")

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NGramEncoder(n=0)
