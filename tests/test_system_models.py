"""Tests for tasks, cores, power, thermal, lifetime, SER, MTTF, MWTF."""

import numpy as np
import pytest

from repro.system import (
    Core,
    DEFAULT_VF_LEVELS,
    Task,
    TaskSet,
    ThermalModel,
    availability,
    combined_mttf,
    dynamic_power,
    em_mttf,
    generate_task_set,
    hci_mttf,
    leakage_power,
    mwtf,
    nbti_mttf,
    soft_error_rate,
    system_mttf,
    task_failure_probability,
    tc_mttf,
    tddb_mttf,
)
from repro.system.power import total_power


class TestTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            Task("t", wcet=0.0, period=1.0)
        with pytest.raises(ValueError):
            Task("t", wcet=2.0, period=1.0)
        with pytest.raises(ValueError):
            Task("t", wcet=0.1, period=1.0, vulnerability=2.0)

    def test_implicit_deadline(self):
        t = Task("t", wcet=0.1, period=0.5)
        assert t.deadline == 0.5

    def test_utilization(self):
        assert Task("t", wcet=0.25, period=1.0).utilization == 0.25

    def test_duplicate_names_rejected(self):
        t = Task("t", wcet=0.1, period=1.0)
        with pytest.raises(ValueError):
            TaskSet([t, Task("t", wcet=0.1, period=1.0)])


class TestGenerateTaskSet:
    def test_utilization_target_met(self):
        ts = generate_task_set(n_tasks=10, total_utilization=1.5, seed=0)
        assert ts.utilization == pytest.approx(1.5, rel=0.15)

    def test_deterministic(self):
        a = generate_task_set(seed=3)
        b = generate_task_set(seed=3)
        assert [t.wcet for t in a] == [t.wcet for t in b]

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            generate_task_set(n_tasks=2, total_utilization=5.0)


class TestCore:
    def test_boot_at_max_level(self):
        core = Core(0)
        assert core.vf == DEFAULT_VF_LEVELS[-1]

    def test_effective_speed_scales_with_level(self):
        core = Core(0)
        core.set_level(0)
        slow = core.effective_speed()
        core.set_level(len(DEFAULT_VF_LEVELS) - 1)
        assert core.effective_speed() > slow

    def test_sleeping_core_does_no_work(self):
        core = Core(0)
        core.set_power_state("sleep")
        assert core.effective_speed() == 0.0
        task = Task("t", wcet=0.1, period=1.0)
        assert core.scaled_wcet(task) == float("inf")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            Core(0).set_level(99)

    def test_invalid_power_state_rejected(self):
        with pytest.raises(ValueError):
            Core(0).set_power_state("hibernate")


class TestPower:
    def test_dynamic_power_quadratic_in_voltage(self):
        p1 = dynamic_power(0.6, 1.0)
        p2 = dynamic_power(1.2, 1.0)
        assert p2 == pytest.approx(4 * p1)

    def test_leakage_grows_with_temperature(self):
        assert leakage_power(1.0, 90.0) > leakage_power(1.0, 40.0)

    def test_total_power_off_core_is_zero(self):
        core = Core(0)
        core.set_power_state("off")
        assert total_power(core) == 0.0

    def test_idle_cheaper_than_active(self):
        active = Core(0)
        active.utilization = 0.8
        idle = Core(1)
        idle.set_power_state("idle")
        idle.utilization = 0.8
        assert total_power(idle) < total_power(active)


class TestThermal:
    def test_heating_under_power(self):
        tm = ThermalModel(2, ambient_c=40.0)
        for _ in range(100):
            tm.step([5.0, 0.0], dt=0.05)
        assert tm.temperatures[0] > 45.0
        assert tm.temperatures[0] > tm.temperatures[1]  # gradient

    def test_cooling_to_ambient(self):
        tm = ThermalModel(1, ambient_c=40.0)
        for _ in range(50):
            tm.step([8.0], dt=0.05)
        hot = tm.temperatures[0]
        for _ in range(400):
            tm.step([0.0], dt=0.05)
        assert tm.temperatures[0] < hot
        assert tm.temperatures[0] == pytest.approx(40.0, abs=1.0)

    def test_neighbor_coupling_spreads_heat(self):
        tm = ThermalModel(2, ambient_c=40.0)
        for _ in range(200):
            tm.step([6.0, 0.0], dt=0.05)
        assert tm.temperatures[1] > 40.5  # heat leaked to the idle neighbor

    def test_thermal_cycles_recorded(self):
        tm = ThermalModel(1, ambient_c=40.0)
        for _ in range(4):
            for _ in range(80):
                tm.step([10.0], dt=0.05)
            for _ in range(80):
                tm.step([0.0], dt=0.05)
        assert tm.cycle_count(0) >= 3
        assert tm.mean_cycle_amplitude(0) > 1.0

    def test_power_shape_validated(self):
        with pytest.raises(ValueError):
            ThermalModel(2).step([1.0], dt=0.1)


class TestLifetimeModels:
    def test_all_mechanisms_hotter_is_shorter(self):
        for model in (em_mttf, tddb_mttf, nbti_mttf, hci_mttf):
            assert model(100.0) < model(50.0)

    def test_tddb_voltage_acceleration(self):
        assert tddb_mttf(60.0, voltage=1.1) < tddb_mttf(60.0, voltage=0.9)

    def test_em_current_density(self):
        assert em_mttf(60.0, current_density=2.0) < em_mttf(60.0, current_density=1.0)

    def test_tc_bigger_swings_shorter_life(self):
        assert tc_mttf(30.0) < tc_mttf(5.0)

    def test_nominal_corner_magnitudes(self):
        # All mechanisms are normalized to ~10 years near nominal conditions.
        assert 5.0 < float(em_mttf(60.0)) < 20.0
        assert 5.0 < float(tddb_mttf(60.0)) < 20.0
        assert 5.0 < float(nbti_mttf(60.0)) < 30.0
        assert 5.0 < float(hci_mttf(60.0)) < 30.0

    def test_combined_below_weakest(self):
        parts = [
            float(em_mttf(60.0)),
            float(tddb_mttf(60.0)),
            float(tc_mttf(5.0)),
            float(nbti_mttf(60.0)),
            float(hci_mttf(60.0)),
        ]
        assert float(combined_mttf(60.0)) < min(parts)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            em_mttf(60.0, current_density=0.0)
        with pytest.raises(ValueError):
            tddb_mttf(60.0, voltage=-1.0)


class TestSER:
    def test_exponential_voltage_dependence(self):
        low = soft_error_rate(0.6)
        high = soft_error_rate(1.0)
        assert low > 10 * high

    def test_task_failure_probability_bounds(self):
        t = Task("t", wcet=0.01, period=0.1, vulnerability=0.5)
        p = task_failure_probability(t, voltage=0.7, execution_time=0.02)
        assert 0.0 <= p < 1.0

    def test_longer_exposure_riskier(self):
        t = Task("t", wcet=0.01, period=0.1, vulnerability=0.5)
        assert task_failure_probability(t, 0.7, 0.05) > task_failure_probability(
            t, 0.7, 0.01
        )


class TestSystemMTTFAndMWTF:
    def test_series_system_weaker_than_parts(self):
        assert system_mttf([10.0, 10.0]) == pytest.approx(5.0)

    def test_availability(self):
        assert availability(99.0, 1.0) == pytest.approx(0.99)

    def test_mwtf_prefers_fast_robust_core(self):
        t = Task("t", wcet=0.01, period=0.1, vulnerability=0.5)
        fast_robust = Core(0, speed_factor=1.5, vulnerability_factor=0.5)
        slow_fragile = Core(1, speed_factor=0.8, vulnerability_factor=2.0)
        assert mwtf(t, fast_robust) > mwtf(t, slow_fragile)
