"""Setuptools shim.

Kept alongside pyproject.toml so ``pip install -e .`` works on
environments whose setuptools lacks the PEP-660 editable-wheel path
(older toolchains fall back to ``setup.py develop`` through this file).
"""

from setuptools import setup

setup()
