#!/usr/bin/env python
"""Chaos + SIGINT + ``--resume`` acceptance check.

Runs the same small fault-injection campaign three ways:

1. **reference** — uninterrupted, no chaos, its own cache directory;
2. **chaos** — the chunk worker is wrapped in
   :class:`repro.runtime.ChaosWorker` so some units crash the worker
   process outright and others raise, and the campaign is interrupted by
   a real ``SIGINT`` partway through.  Completed units are journaled in
   the campaign manifest as they finish;
3. **resume** — the same campaign is re-launched with ``resume=True`` on
   the same cache (chaos still active), replays the journal, finishes
   the remainder, and must match the reference **bit for bit**.

Exit status is nonzero if the resumed records differ from the reference
in any byte, if the interrupt did not leave a partial journal behind, or
if the resume did not actually replay journaled units.  This is the
executable form of the determinism contract in ``docs/campaigns.md``
("Fault tolerance & resume"); the ``chaos-resume`` CI job runs it
serially and with ``--jobs 4`` on every push.  With ``--steer`` the
same three legs run the surrogate-steered adaptive campaign
(``docs/steering.md``) — the resumed run must additionally reproduce
the reference's steering summary (rounds, trajectory, estimate).

Run locally with::

    PYTHONPATH=src python scripts/chaos_resume_check.py --jobs 4 --record runs
"""

from __future__ import annotations

import argparse
import hashlib
import json
import signal
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import FaultInjector, SteeringConfig  # noqa: E402
from repro.arch import programs as P  # noqa: E402
from repro.runtime import ChaosSpec, ChaosWorker, FaultPolicy, ResultCache  # noqa: E402

# Chaos mix: ~1 in 4 units raises, ~1 in 8 kills its worker process.
# First attempt of a doomed unit fails; retries succeed (fail_attempts=1).
CHAOS = ChaosSpec(raise_rate=0.25, exit_rate=0.125, seed=7)
# Tight backoff/poll so the check stays fast; generous retry/respawn
# budgets so chaos never exhausts a unit.
POLICY = FaultPolicy(max_retries=6, max_pool_respawns=16,
                     backoff_base_s=0.001, poll_interval_s=0.02)


class _SigintAfter:
    """Progress callback that delivers a real SIGINT after ``n`` events."""

    def __init__(self, n):
        self.n = n
        self.seen = 0

    def __call__(self, event):
        self.seen += 1
        if self.seen == self.n:
            signal.raise_signal(signal.SIGINT)


def campaign_digest(result):
    """SHA-256 over every field of every record, in trial order.

    Canonical JSON, not pickle: pickle memoizes repeated string
    *objects*, so value-equal records serialize differently depending on
    whether they came from the cache or from a live worker.
    """
    payload = json.dumps(
        [
            (r.program, r.cycle, r.element, r.bit, r.outcome.value,
             r.pc_at_injection, r.opcode_at_injection)
            for r in result.records
        ],
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _injector():
    return FaultInjector(P.checksum(10))


def _run(jobs, trials, cache, *, chaos_dir=None, resume=False, progress=None,
         steer=False):
    injector = _injector()
    wrapper = None
    if chaos_dir is not None:
        wrapper = lambda worker: ChaosWorker(worker, CHAOS, chaos_dir)  # noqa: E731
    if steer:
        # The steered campaign journals adaptive rounds in the same
        # manifest; round sealing replays on_result from cache hits, so
        # the resumed run must regenerate the exact same rounds.
        result = injector.run_steered_campaign(
            budget=trials, seed=0, jobs=jobs, cache=cache,
            config=SteeringConfig(), policy=POLICY, resume=resume,
            progress=progress, worker_wrapper=wrapper,
        )
    else:
        result = injector.run_campaign(
            n_trials=trials, seed=0, jobs=jobs, cache=cache, chunk_size=16,
            policy=POLICY, resume=resume, progress=progress,
            worker_wrapper=wrapper,
        )
    return result, injector.last_run_stats


def _record_run(record_dir, name, jobs, trials, fn):
    """Run ``fn`` under a RunRecorder when ``record_dir`` is set."""
    if record_dir is None:
        return fn()
    from repro import obs
    from repro.obs import RunRecorder

    config = {"experiment": "chaos-resume-check", "leg": name,
              "jobs": jobs, "trials": trials}
    with RunRecorder(Path(record_dir) / name, name=f"chaos-{name}",
                     config=config, seed=0) as recorder:
        with obs.span(f"ci.chaos_resume.{name}"):
            out = fn()
    print(f"  run record ({name}): {recorder.path}")
    return out


def check(jobs, trials, workdir, record_dir, steer=False):
    workdir = Path(workdir)
    mode = "steered" if steer else "uniform"
    print(f"[chaos-resume] jobs={jobs} trials={trials} mode={mode}")

    # Leg 1: uninterrupted reference on a pristine cache, no chaos.
    ref_cache = ResultCache(workdir / "cache-reference")
    reference, _ = _record_run(
        record_dir, "reference", jobs, trials,
        lambda: _run(jobs, trials, ref_cache, steer=steer),
    )
    ref_digest = campaign_digest(reference)
    print(f"  reference digest: {ref_digest}")

    # Leg 2: chaos + one SIGINT partway through.  Chaos state (per-unit
    # attempt counters) persists across the interrupt so already-failed
    # units succeed on their retry after resume, like a real flaky host.
    chaos_cache = ResultCache(workdir / "cache-chaos")
    chaos_dir = workdir / "chaos-state"
    interrupted = False
    try:
        _run(jobs, trials, chaos_cache, chaos_dir=chaos_dir,
             progress=_SigintAfter(3), steer=steer)
    except KeyboardInterrupt:
        interrupted = True
    if not interrupted:
        print("FAIL: SIGINT did not interrupt the chaos campaign", file=sys.stderr)
        return 1
    manifests = list((chaos_cache.path / "manifests").glob("*.jsonl"))
    if not manifests:
        print("FAIL: interrupt left no campaign manifest behind", file=sys.stderr)
        return 1
    print(f"  interrupted after SIGINT; manifest: {manifests[0].name}")

    # Leg 3: resume on the same cache, chaos still active.
    resumed, stats = _record_run(
        record_dir, "resumed", jobs, trials,
        lambda: _run(jobs, trials, chaos_cache, chaos_dir=chaos_dir,
                     resume=True, steer=steer),
    )
    res_digest = campaign_digest(resumed)
    print(f"  resumed digest:   {res_digest}")
    print(f"  resumed stats: journaled_units={stats.journaled_units} "
          f"retries={stats.retries} pool_respawns={stats.pool_respawns}")

    if stats.journaled_units == 0:
        print("FAIL: resume replayed no journaled units (interrupt landed "
              "before any unit completed?)", file=sys.stderr)
        return 1
    if res_digest != ref_digest:
        print("FAIL: resumed campaign is not bit-identical to the reference",
              file=sys.stderr)
        return 1
    if steer and resumed.steering != reference.steering:
        print("FAIL: resumed steering summary (rounds/trajectory/estimate) "
              "differs from the reference", file=sys.stderr)
        return 1
    print(f"  OK: chaos + SIGINT + resume is bit-identical "
          f"(jobs={jobs}, mode={mode})")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for all three legs (default 1)")
    parser.add_argument("--trials", type=int, default=192,
                        help="campaign size (default 192; 12 units of 16)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    parser.add_argument("--record", default=None, metavar="DIR",
                        help="write reference/resumed run records under DIR")
    parser.add_argument("--steer", action="store_true",
                        help="run the surrogate-steered campaign instead of "
                             "the uniform one (--trials becomes the budget; "
                             "docs/steering.md)")
    args = parser.parse_args(argv)

    if args.workdir is not None:
        Path(args.workdir).mkdir(parents=True, exist_ok=True)
        return check(args.jobs, args.trials, args.workdir, args.record,
                     steer=args.steer)
    with tempfile.TemporaryDirectory(prefix="chaos-resume-") as workdir:
        return check(args.jobs, args.trials, workdir, args.record,
                     steer=args.steer)


if __name__ == "__main__":
    sys.exit(main())
