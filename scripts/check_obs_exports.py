#!/usr/bin/env python
"""Validate the observability exporters' output formats.

Two validators, one per exporter, usable as a library (the test suite
imports them) or as a CLI (CI's observability-smoke job runs both on
artifacts exported from a freshly recorded run):

* :func:`check_chrome_trace` — the Chrome trace-event JSON contract the
  Perfetto / ``chrome://tracing`` loaders rely on: a ``traceEvents``
  list whose entries carry ``name``/``ph``/``pid``/``tid``, a numeric
  non-negative ``ts`` on every non-metadata event, a ``dur`` on every
  complete (``"X"``) event, and sane phase codes.
* :func:`check_prometheus_text` — a line grammar covering the subset of
  the Prometheus text exposition format the exporter emits: ``# HELP`` /
  ``# TYPE`` comments with known types, sample lines with a valid metric
  name, optional well-formed ``{label="value"}`` sets, and a numeric
  (or ``NaN``) value; every sample must be preceded by its ``# TYPE``.

Run from the repo root::

    python scripts/check_obs_exports.py --trace t.json --prom m.prom

Exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Phase codes the exporter may emit (a subset of the trace-event spec).
KNOWN_PHASES = {"X", "M", "i", "B", "E", "C"}

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_SET = re.compile(r'^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
                       r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$')
SAMPLE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$")
TYPE_LINE = re.compile(r"^# TYPE (?P<name>\S+) (?P<type>\S+)$")
HELP_LINE = re.compile(r"^# HELP (?P<name>\S+) .+$")
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def check_chrome_trace(document):
    """Return a list of violations of the trace-event JSON contract."""
    errors = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing required key {key!r}")
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
        if phase != "M":  # metadata events carry no timestamp
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: 'ts' must be a number >= 0, got {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: complete event needs numeric 'dur' >= 0, "
                    f"got {dur!r}"
                )
    return errors


def _valid_value(text):
    if text in ("NaN", "+Inf", "-Inf"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True


def check_prometheus_text(text):
    """Return a list of violations of the exposition-format line grammar."""
    errors = []
    typed = set()  # metric families announced by a preceding # TYPE
    saw_sample = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            type_match = TYPE_LINE.match(line)
            if type_match:
                if type_match.group("type") not in KNOWN_TYPES:
                    errors.append(
                        f"line {lineno}: unknown metric type "
                        f"{type_match.group('type')!r}"
                    )
                typed.add(type_match.group("name"))
                continue
            if HELP_LINE.match(line):
                continue
            errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        sample = SAMPLE.match(line)
        if sample is None:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        saw_sample = True
        name = sample.group("name")
        if not METRIC_NAME.match(name):
            errors.append(f"line {lineno}: invalid metric name {name!r}")
        labels = sample.group("labels")
        if labels is not None and not LABEL_SET.match(labels):
            errors.append(f"line {lineno}: malformed label set {labels!r}")
        if not _valid_value(sample.group("value")):
            errors.append(
                f"line {lineno}: non-numeric sample value "
                f"{sample.group('value')!r}"
            )
        # A summary's quantile/_sum/_count lines share their family's TYPE.
        family = re.sub(r"_(sum|count|bucket|total)$", "", name)
        if name not in typed and family not in typed and name + "_total" not in typed:
            errors.append(f"line {lineno}: sample {name!r} has no # TYPE")
    if not saw_sample:
        errors.append("no sample lines found")
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--prom", default=None, metavar="FILE",
                        help="Prometheus text exposition file to validate")
    args = parser.parse_args(argv)
    if not args.trace and not args.prom:
        parser.error("give at least one of --trace / --prom")
    failures = []
    if args.trace:
        with open(args.trace) as fh:
            document = json.load(fh)
        errors = check_chrome_trace(document)
        failures += [f"{args.trace}: {e}" for e in errors]
        if not errors:
            n = len(document["traceEvents"])
            print(f"{args.trace}: valid chrome trace ({n} events)")
    if args.prom:
        with open(args.prom) as fh:
            text = fh.read()
        errors = check_prometheus_text(text)
        failures += [f"{args.prom}: {e}" for e in errors]
        if not errors:
            n = sum(1 for ln in text.splitlines()
                    if ln.strip() and not ln.startswith("#"))
            print(f"{args.prom}: valid prometheus text ({n} samples)")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
