#!/usr/bin/env python
"""Distributed-fabric acceptance check: worker murder + ``--resume``.

Runs the same small fault-injection campaign four ways, over the
distributed transport named by ``--transport`` (``fqueue`` or ``tcp``):

1. **reference** — serial, inline transport, its own cache directory;
2. **worker-kill** — over the selected transport with two
   *independently spawned* ``python -m repro worker`` processes
   (``workers=0``: the transport babysits nothing).  One worker gets a
   real ``SIGKILL`` the moment it holds a claim; the claim is voided —
   by the stale-heartbeat scan (fqueue) or the dropped connection
   (tcp) — and the survivor finishes the campaign, which must match
   the reference **bit for bit**;
3. **interrupt** — a fresh distributed campaign is cut down by a real
   ``SIGINT`` partway through, leaving a partial manifest behind;
4. **resume** — the interrupted campaign is re-launched with
   ``resume=True`` on the same cache, replays the journal, finishes the
   remainder, and must also match the reference bit for bit.

Exit status is nonzero if any distributed leg differs from the serial
reference in any byte, if the kill landed after the campaign had
already finished (the check proved nothing), if the survivor did no
work, or if the resume replayed no journaled units.  This is the
executable form of the worker-churn contract in ``docs/distributed.md``
("Surviving worker churn"); the ``dist-smoke`` CI job runs it on every
push, once per transport.

Run locally with::

    PYTHONPATH=src python scripts/dist_smoke_check.py --transport tcp
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import FaultInjector  # noqa: E402
from repro.arch import programs as P  # noqa: E402
from repro.runtime import (  # noqa: E402
    ChaosSpec,
    ChaosWorker,
    FaultPolicy,
    FileQueueTransport,
    ResultCache,
    TcpTransport,
)
from repro.runtime.transports.tcp import AUTH_ENV  # noqa: E402

# Tight backoff/poll so the check stays fast; a generous retry budget so
# a voided lease (the murdered worker's units) never exhausts a unit.
POLICY = FaultPolicy(max_retries=6, backoff_base_s=0.001,
                     poll_interval_s=0.02)
# Every unit sleeps 100 ms before executing (sleep only — results are
# untouched).  Without this the batched FI engine finishes a unit in
# well under a millisecond and the victim would usually complete its
# claim before the SIGKILL lands, leaving the lease-void recovery path
# untested.
SLOW = ChaosSpec(slow_rate=1.0, slow_s=0.1, fail_attempts=10**6, seed=1)
#: Heartbeat-staleness horizon: how long after the SIGKILL the scheduler
#: takes to void the dead worker's claims.  Short keeps CI fast.
STALE_S = 2.0
#: Idle-poll of the externally spawned workers and of the transport.
POLL_S = 0.02


class _SigintAfter:
    """Progress callback that delivers a real SIGINT after ``n`` events."""

    def __init__(self, n):
        self.n = n
        self.seen = 0

    def __call__(self, event):
        self.seen += 1
        if self.seen == self.n:
            signal.raise_signal(signal.SIGINT)


def campaign_digest(result):
    """SHA-256 over every field of every record, in trial order.

    Canonical JSON, not pickle: pickle memoizes repeated string
    *objects*, so value-equal records serialize differently depending on
    whether they came from the cache or from a live worker.
    """
    payload = json.dumps(
        [
            (r.program, r.cycle, r.element, r.bit, r.outcome.value,
             r.pc_at_injection, r.opcode_at_injection)
            for r in result.records
        ],
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _injector():
    return FaultInjector(P.checksum(10))


def _run(trials, cache, *, transport=None, resume=False, progress=None,
         slow_dir=None):
    injector = _injector()
    wrapper = None
    if slow_dir is not None:
        wrapper = lambda worker: ChaosWorker(worker, SLOW, slow_dir)  # noqa: E731
    result = injector.run_campaign(
        n_trials=trials, seed=0, jobs=1, cache=cache, chunk_size=16,
        policy=POLICY, resume=resume, progress=progress,
        worker_wrapper=wrapper, transport=transport,
    )
    return result, injector.last_run_stats


def _make_transport(kind, workdir, tag, workers):
    """Build the distributed transport under test for one leg."""
    if kind == "tcp":
        return TcpTransport(workers=workers, poll_s=POLL_S,
                            worker_poll_s=POLL_S, stale_s=STALE_S)
    return FileQueueTransport(workdir / f"queue-{tag}", workers=workers,
                              poll_s=POLL_S, stale_s=STALE_S)


def _spawn_external_worker(kind, transport, worker_id):
    """Launch an independent ``python -m repro worker`` process."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if kind == "tcp":
        host, port = transport.ensure_listening()
        env[AUTH_ENV] = transport.auth  # the handshake secret
        target = ["--connect", f"{host}:{port}"]
    else:
        target = [str(transport.queue_dir)]
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", *target,
         "--id", worker_id, "--poll", str(POLL_S)],
        env=env,
    )


def _wait_for_claim(kind, transport, worker_id, alive, timeout_s=30.0):
    """Block until ``worker_id`` holds a claim; False if the run ends first."""
    deadline = time.time() + timeout_s
    if kind == "tcp":
        while time.time() < deadline and alive():
            if worker_id in transport.claim_holders():
                return True
            time.sleep(0.005)
        return False
    claimed = Path(transport.queue_dir) / "claimed"
    marker = f"@{worker_id}."
    while time.time() < deadline and alive():
        if claimed.is_dir() and any(
            marker in p.name for p in claimed.iterdir()
        ):
            return True
        time.sleep(0.005)
    return False


def _worker_kill_leg(kind, trials, workdir, ref_digest):
    """Leg 2: SIGKILL a claiming external worker; survivors must finish."""
    cache = ResultCache(workdir / "cache-kill")
    transport = _make_transport(kind, workdir, "kill", workers=0)
    victim = _spawn_external_worker(kind, transport, "victim")
    survivor = _spawn_external_worker(kind, transport, "survivor")
    outcome = {}

    def drive():
        try:
            outcome["result"], outcome["stats"] = _run(
                trials, cache, transport=transport,
                slow_dir=workdir / "slow-state",
            )
        except BaseException as exc:  # surfaced after join
            outcome["error"] = exc

    thread = threading.Thread(target=drive)
    try:
        thread.start()
        claimed = _wait_for_claim(kind, transport, "victim", thread.is_alive)
        if not claimed:
            print("FAIL: victim worker never held a claim mid-run",
                  file=sys.stderr)
            return 1
        mid_run = thread.is_alive()
        victim.kill()
        print("  SIGKILLed the victim worker while it held a claim")
        thread.join(timeout=120)
        if thread.is_alive():
            print("FAIL: campaign did not recover from the worker kill",
                  file=sys.stderr)
            return 1
        if "error" in outcome:
            raise outcome["error"]
        if not mid_run:
            print("FAIL: kill landed after the campaign finished; the "
                  "check proved nothing", file=sys.stderr)
            return 1
        stats = outcome["stats"]
        if "survivor" not in stats.workers:
            print("FAIL: the surviving worker executed no units",
                  file=sys.stderr)
            return 1
        if stats.requeues == 0:
            print("FAIL: the victim's claim was never voided and "
                  "re-dispatched (lease-void path untested)",
                  file=sys.stderr)
            return 1
        digest = campaign_digest(outcome["result"])
        print(f"  survivors digest: {digest} "
              f"(requeues={stats.requeues} retries={stats.retries})")
        if digest != ref_digest:
            print("FAIL: post-kill campaign is not bit-identical to the "
                  "serial reference", file=sys.stderr)
            return 1
        print("  OK: mid-run SIGKILL, survivors bit-identical")
        return 0
    finally:
        victim.kill()
        survivor.kill()
        victim.wait()
        survivor.wait()
        transport.shutdown()


def _resume_leg(kind, trials, workdir, ref_digest):
    """Legs 3+4: SIGINT a distributed campaign, resume it, compare."""
    cache = ResultCache(workdir / "cache-resume")
    interrupted = False
    transport = _make_transport(kind, workdir, "int", workers=2)
    try:
        _run(trials, cache, transport=transport, progress=_SigintAfter(3))
    except KeyboardInterrupt:
        interrupted = True
    finally:
        transport.shutdown()
    if not interrupted:
        print(f"FAIL: SIGINT did not interrupt the {kind} campaign",
              file=sys.stderr)
        return 1
    manifests = list((cache.path / "manifests").glob("*.jsonl"))
    if not manifests:
        print("FAIL: interrupt left no campaign manifest behind",
              file=sys.stderr)
        return 1
    print(f"  interrupted after SIGINT; manifest: {manifests[0].name}")

    transport = _make_transport(kind, workdir, "resume", workers=2)
    try:
        resumed, stats = _run(trials, cache, transport=transport,
                              resume=True)
    finally:
        transport.shutdown()
    digest = campaign_digest(resumed)
    print(f"  resumed digest:   {digest} "
          f"(journaled_units={stats.journaled_units})")
    if stats.journaled_units == 0:
        print("FAIL: resume replayed no journaled units (interrupt landed "
              "before any unit completed?)", file=sys.stderr)
        return 1
    if digest != ref_digest:
        print(f"FAIL: resumed {kind} campaign is not bit-identical to the "
              "serial reference", file=sys.stderr)
        return 1
    print(f"  OK: SIGINT + --resume over {kind} is bit-identical")
    return 0


def check(kind, trials, workdir):
    workdir = Path(workdir)
    print(f"[dist-smoke] transport={kind} trials={trials}")
    reference, _ = _run(trials, ResultCache(workdir / "cache-reference"))
    ref_digest = campaign_digest(reference)
    print(f"  reference digest: {ref_digest}")
    status = _worker_kill_leg(kind, trials, workdir, ref_digest)
    status |= _resume_leg(kind, trials, workdir, ref_digest)
    return status


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transport", choices=("fqueue", "tcp"),
                        default="fqueue",
                        help="distributed transport under test")
    parser.add_argument("--trials", type=int, default=320,
                        help="campaign size (default 320; 20 units of 16)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    if args.workdir is not None:
        Path(args.workdir).mkdir(parents=True, exist_ok=True)
        return check(args.transport, args.trials, args.workdir)
    with tempfile.TemporaryDirectory(prefix="dist-smoke-") as workdir:
        return check(args.transport, args.trials, workdir)


if __name__ == "__main__":
    sys.exit(main())
