#!/usr/bin/env python
"""Fail on markdown references to files or heading anchors that don't exist.

Three classes of reference are checked across ``*.md`` and ``docs/*.md``:

* inline links ``[text](path)`` — the path must exist relative to the
  linking file or the repo root;
* bare path mentions like ``docs/campaigns.md`` or ``src/...`` in
  backticks — same existence rule;
* anchor fragments ``[text](#heading)`` and ``[text](path#heading)`` —
  the fragment must match a heading slug in the target file, using
  GitHub's slugification rules (lowercase, punctuation stripped,
  spaces to hyphens, ``-N`` suffixes for duplicates).

Run from the repo root: ``python scripts/check_docs_links.py``.
Exits non-zero listing every broken reference.  CI runs this in the
docs-links job.
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
MENTION = re.compile(r"`((?:docs|benchmarks|examples|src|tests|scripts)/[\w./-]+)`")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")
# GitHub keeps word characters, hyphens, and spaces; everything else is
# dropped before spaces become hyphens.
SLUG_DROP = re.compile(r"[^\w\- ]")
MD_MARKUP = re.compile(r"[`*]|\[([^\]]*)\]\([^)]*\)")


def github_slugs(path: pathlib.Path) -> set[str]:
    """Return the set of anchor slugs GitHub generates for *path*'s headings."""
    seen: dict[str, int] = {}
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        text = MD_MARKUP.sub(lambda m: m.group(1) or "", match.group(2))
        slug = SLUG_DROP.sub("", text.lower()).replace(" ", "-")
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def resolve(md: pathlib.Path, repo: pathlib.Path, target: str) -> pathlib.Path | None:
    """Resolve a relative *target* against the linking file, then the repo root."""
    for base in (md.parent, repo):
        candidate = base / target
        if candidate.exists():
            return candidate
    return None


def main() -> int:
    repo = pathlib.Path(".")
    md_files = list(repo.glob("*.md")) + list(repo.glob("docs/*.md"))
    slug_cache: dict[pathlib.Path, set[str]] = {}
    bad = []
    for md in md_files:
        text = md.read_text()
        for target in sorted(set(LINK.findall(text)) | set(MENTION.findall(text))):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = resolve(md, repo, path_part)
                if resolved is None:
                    bad.append(f"{md}: broken reference -> {target}")
                    continue
            else:
                resolved = md  # same-file anchor: [text](#heading)
            if fragment:
                if resolved.suffix != ".md":
                    bad.append(f"{md}: anchor on non-markdown target -> {target}")
                    continue
                if resolved not in slug_cache:
                    slug_cache[resolved] = github_slugs(resolved)
                if fragment not in slug_cache[resolved]:
                    bad.append(f"{md}: no such anchor -> {target}")
    if bad:
        print("\n".join(sorted(bad)))
        return 1
    print(f"checked {len(md_files)} markdown files, all references and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
