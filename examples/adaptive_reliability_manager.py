"""Scenario: a mission computer managing its own reliability at run time.

An embedded multicore runs a periodic avionics-like task set.  The Fig. 1
learning loop manages it live:

* an RL-DVFS manager balances deadlines, soft-error exposure, thermals,
  and energy ([1],[43]);
* an RL thermal manager adds task migration to flatten hot spots
  ([39],[40]);
* an adaptive replication manager reacts to a drifting radiation
  environment ([45]);
* an NN-based mapper places tasks on a big.LITTLE platform to maximize
  mean workload to failure ([2]).

Usage:
    python examples/adaptive_reliability_manager.py
"""

from repro.system import (
    AdaptiveReplicationManager,
    MWTFMappingStudy,
    ReplicationEnvironment,
    RLDVFSManager,
    RLThermalManager,
    StaticManager,
    generate_task_set,
    run_managed_simulation,
)
from repro.system.mwtf_mapping import make_heterogeneous_cores


def show(name, metrics):
    print(f"  {name:<22} hit {metrics.deadline_hit_rate:.3f}  "
          f"energy {metrics.energy_j:6.1f} J  "
          f"peak {metrics.peak_temperature_c:5.1f} C  "
          f"MTTF {metrics.mttf_years:5.2f} y")


def dvfs_management(tasks):
    print("\nRL-DVFS vs static (20 s mission window, 4 cores):")
    static = run_managed_simulation(StaticManager(), tasks, n_cores=4, duration=20.0, seed=0)
    show("static max V-f", static)
    rl = RLDVFSManager(seed=0)
    managed = run_managed_simulation(
        rl, tasks, n_cores=4, duration=20.0, seed=0, training_episodes=8
    )
    show("RL-DVFS", managed)
    print(f"  (agent explored {rl.agent.n_visited_states} states)")


def thermal_management():
    print("\nRL thermal manager on a heat-concentrated workload:")
    tasks = generate_task_set(n_tasks=10, total_utilization=2.4, seed=2)
    static = run_managed_simulation(StaticManager(), tasks, n_cores=4, duration=20.0, seed=0)
    show("static max V-f", static)
    rl = RLThermalManager(t_limit_c=58.0, seed=0)
    managed = run_managed_simulation(
        rl, tasks, n_cores=4, duration=20.0, seed=0, training_episodes=6
    )
    show("RL thermal", managed)


def replication_management():
    print("\nAdaptive replication in a drifting fault environment:")
    manager = AdaptiveReplicationManager(seed=0).train(
        lambda: ReplicationEnvironment(seed=42)
    )
    for name, policy in (
        ("static 1 replica", lambda obs: 1),
        ("static 5 replicas", lambda obs: 5),
        ("adaptive", manager.choose_replicas),
    ):
        env = ReplicationEnvironment(seed=7)
        m = manager.run_episode(env, policy, n_epochs=500)
        print(f"  {name:<18} failure rate {m.failure_rate:.4f}  "
              f"overhead {m.overhead:.2f} replicas/job")


def mwtf_mapping():
    print("\nMWTF-maximizing mapping on big.LITTLE ([2]):")
    cores = make_heterogeneous_cores(seed=0)
    study = MWTFMappingStudy(cores, seed=0)
    study.train(generate_task_set(12, total_utilization=2.0, seed=5))
    tasks = generate_task_set(8, total_utilization=1.8, seed=9)
    for result in (
        study.map_performance_only(tasks),
        study.map_mwtf_nn(tasks),
        study.map_mwtf_oracle(tasks),
    ):
        print(f"  {result.strategy:<12} MWTF {result.mwtf:.3e} jobs/failure, "
              f"max core load {result.makespan_utilization:.2f}")


def main():
    tasks = generate_task_set(n_tasks=8, total_utilization=2.0, seed=0)
    print(f"task set: {len(tasks)} periodic tasks, total utilization "
          f"{tasks.utilization:.2f}")
    dvfs_management(tasks)
    thermal_management()
    replication_management()
    mwtf_mapping()


if __name__ == "__main__":
    main()
