"""Quickstart: a tour of the repro library across all abstraction layers.

Runs one small experiment per layer of the paper — transistor, circuit,
architecture, OS/system, and the Sec. V fault-tolerant timing analysis —
in under a minute.

Usage:
    python examples/quickstart.py
"""

import numpy as np


def transistor_level():
    """Aging and self-heating of a single device."""
    from repro.transistor import (
        SelfHeatingModel,
        Transistor,
        aged_transistor,
        alpha_power_delay,
    )

    device = Transistor(width_nm=100, n_fins=2, is_pmos=True)
    fresh_delay = alpha_power_delay(device, load_cap_ff=4.0)
    ten_years = 3.15e8
    aged = aged_transistor(device, ten_years, duty_cycle=0.5, temperature_c=100.0)
    aged_delay = alpha_power_delay(aged, load_cap_ff=4.0)
    she = SelfHeatingModel().delta_t(device, input_slew_ps=40.0, load_cap_ff=8.0)
    print("[transistor] fresh delay      : %.2f ps" % fresh_delay)
    print("[transistor] 10y-aged delay   : %.2f ps (+%.1f%%)"
          % (aged_delay, 100 * (aged_delay / fresh_delay - 1)))
    print("[transistor] self-heating dT  : %.1f K above chip temperature" % she)


def circuit_level():
    """STA on a synthetic core and the Fig. 3 SHE flow."""
    from repro.circuit import (
        SheFlow,
        SpiceLikeCharacterizer,
        StaticTimingAnalysis,
        build_default_library,
        synthesize_core,
    )

    library = build_default_library(temperature_c=45.0)
    characterizer = SpiceLikeCharacterizer()
    characterizer.characterize_library(library)
    netlist = synthesize_core(library, n_instances=200, seed=0)
    sta = StaticTimingAnalysis(netlist, library, clock_period_ps=1000.0).run()
    print("[circuit]    %d instances, min clock period %.1f ps, critical path %d cells"
          % (len(netlist), sta.min_feasible_period(), len(sta.critical_path())))
    report = SheFlow(characterizer).run(netlist, library)
    lo, mean, hi = report.spread()
    print("[circuit]    per-instance SHE dT: min %.1f / mean %.1f / max %.1f K"
          % (lo, mean, hi))


def architecture_level():
    """Fault injection on the CPU simulator, accelerated by ML."""
    from repro.arch import FaultInjector, Outcome
    from repro.arch import programs as P

    program = P.checksum(12)
    injector = FaultInjector(program)
    campaign = injector.run_campaign(n_trials=300, seed=0)
    rates = campaign.rates()
    print("[arch]       300 injections into %s: %.0f%% masked, %.0f%% SDC, "
          "%.0f%% crash, %.0f%% hang"
          % (
              program.name,
              100 * rates[Outcome.MASKED],
              100 * rates[Outcome.SDC],
              100 * rates[Outcome.CRASH],
              100 * rates[Outcome.HANG],
          ))


def system_level():
    """An RL-DVFS reliability manager vs running flat-out."""
    from repro.system import (
        RLDVFSManager,
        StaticManager,
        generate_task_set,
        run_managed_simulation,
    )

    tasks = generate_task_set(n_tasks=8, total_utilization=2.0, seed=0)
    static = run_managed_simulation(StaticManager(), tasks, n_cores=4, duration=10.0, seed=0)
    rl = run_managed_simulation(
        RLDVFSManager(seed=0), tasks, n_cores=4, duration=10.0, seed=0,
        training_episodes=5,
    )
    print("[system]     static max V-f : hit %.3f, energy %5.1f J, MTTF %.2f y"
          % (static.deadline_hit_rate, static.energy_j, static.mttf_years))
    print("[system]     RL-DVFS        : hit %.3f, energy %5.1f J, MTTF %.2f y"
          % (rl.deadline_hit_rate, rl.energy_j, rl.mttf_years))


def application_level():
    """The Sec. V error-rate wall in three Monte Carlo points."""
    from repro.core import MonteCarloStudy, adpcm_like_workload

    workload = adpcm_like_workload(n_segments=12, seed=0)
    study = MonteCarloStudy(workload, n_runs=40, seed=0)
    for p in (1e-7, 3e-6, 3e-5):
        point = study.run_level(p)
        print("[core]       p=%.0e: %6.2f rollbacks/segment, "
              "hit rates DS %.2f / WCET %.2f"
              % (
                  p,
                  point.mean_rollbacks_per_segment,
                  point.hit_rate["DS"],
                  point.hit_rate["WCET"],
              ))


def main():
    np.set_printoptions(precision=3)
    print("repro quickstart — one experiment per abstraction layer\n")
    transistor_level()
    circuit_level()
    architecture_level()
    system_level()
    application_level()
    print("\nDone. See benchmarks/ for the full paper reproduction.")


if __name__ == "__main__":
    main()
