"""Scenario: locating the error-rate wall of a time-critical application.

Reproduces the Sec. V study end to end: an ADPCM-like segmented workload
runs under checkpointing/rollback-recovery while a cycle-noise mitigation
policy keeps its deadline.  The script sweeps the register-level error
probability, prints the Fig. 5 / Fig. 6 series, locates the wall for each
policy, and shows how raising the maximum processor speed moves the wall
("moving the wall forward" per Sec. V-D).

Usage:
    python examples/error_rate_wall.py
"""

import numpy as np

from repro.core import (
    ALL_POLICIES,
    CheckpointSystem,
    MonteCarloStudy,
    WCET,
    adpcm_like_workload,
    simulate_run,
)

ERROR_PROBS = [1e-8, 1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4]


def sweep_and_report(study):
    points = study.sweep(ERROR_PROBS)
    names = [p.name for p in ALL_POLICIES]
    print("\nFig. 5 / Fig. 6 data (100 Monte Carlo runs per point):")
    print(f"{'p':>8} {'rb/seg':>10}  " + "  ".join(f"{n:>8}" for n in names))
    for pt in points:
        print(
            f"{pt.error_probability:8.0e} {pt.mean_rollbacks_per_segment:10.3f}  "
            + "  ".join(f"{pt.hit_rate[n]:8.2f}" for n in names)
        )
    print("\nError-rate wall per policy (hit rate 0.95 -> 0.05 window):")
    for name in names:
        wall = study.find_wall(points, name)
        print(f"  {name:>8}: safe up to {wall.last_safe_p:.0e}, "
              f"collapsed by {wall.first_failed_p:.0e}")
    return points


def move_the_wall(workload):
    print("\nMoving the wall: WCET hit rate at p = 1e-5 vs max processor speed")
    for max_speed in (2.0, 4.0, 6.0, 8.0):
        cp = CheckpointSystem(1e-5)
        rng = np.random.default_rng(0)
        hits = sum(
            simulate_run(workload, cp, WCET, rng, max_speed=max_speed).deadline_met
            for _ in range(60)
        )
        print(f"  max speed {max_speed:.0f}x: hit rate {hits / 60:.2f}")


def main():
    workload = adpcm_like_workload(n_segments=12, seed=0)
    print(f"workload: {workload.name}, {len(workload)} segments, "
          f"{workload.clean_cycles():,} clean cycles, "
          f"deadline slack {workload.deadline_slack:.0%}")
    study = MonteCarloStudy(workload, n_runs=100, seed=0)
    sweep_and_report(study)
    move_the_wall(workload)


if __name__ == "__main__":
    main()
