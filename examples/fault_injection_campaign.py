"""Scenario: architectural vulnerability analysis with ML acceleration.

Runs a full fault-injection campaign on the CPU simulator (the expensive
ground truth), then shows the three surveyed ML shortcuts of Sec. III:

* predict per-element vulnerability from 20 % of the injections ([20]);
* mine the injection log with GBDT + clustering ([22],[23]);
* shortlist SDC-prone instructions with the inductive GAT ([24]) and
  protect them IPAS-style ([27]).

Usage:
    python examples/fault_injection_campaign.py
"""

import numpy as np

from repro.arch import (
    FaultInjector,
    FIAccelerationStudy,
    PatternMiner,
    ReplicationStudy,
    SDCPredictor,
)
from repro.arch import programs as P
from repro.arch.sdc_prediction import label_instructions


def ground_truth_campaign():
    program = P.matmul(4)
    injector = FaultInjector(program)
    campaign = injector.run_campaign(n_trials=400, seed=0)
    print(f"campaign: {len(campaign.records)} injections into {program.name} "
          f"({campaign.golden_cycles} golden cycles)")
    for outcome, rate in campaign.rates().items():
        print(f"  {outcome.value:>8}: {rate:6.1%}")
    print(f"  overall AVF (failure fraction): {campaign.failure_rate():.3f}")
    return campaign


def accelerate_with_ml():
    study = FIAccelerationStudy(
        [P.checksum(12), P.fibonacci(10), P.vector_add(8)],
        n_trials_per_element=50,
        seed=0,
    )
    print("\n[20] vulnerability prediction from partial campaigns (kNN):")
    for frac, acc in study.accuracy_vs_fraction((0.1, 0.2, 0.5), n_repeats=3):
        saved = 1.0 - frac
        print(f"  train on {frac:4.0%} of elements -> accuracy {acc:.3f} "
              f"({saved:.0%} of injections saved)")


def mine_the_logs(campaign):
    extra = FaultInjector(P.fibonacci(10)).run_campaign(n_trials=300, seed=1)
    miner = PatternMiner([campaign, extra], seed=0).fit_outcome_predictor()
    print(f"\n[22] GBDT on the pooled log ({miner.n_records} records): "
          f"training accuracy {miner.training_accuracy():.3f}")
    importance = miner.feature_importance(n_permutations=2)
    top = sorted(importance.items(), key=lambda kv: -kv[1])[:3]
    print("  most failure-predictive log features: "
          + ", ".join(f"{k} ({v:+.3f})" for k, v in top))
    print("[23] unsupervised failure clusters:")
    for cluster in miner.cluster_summary(n_clusters=3):
        print(f"  cluster {cluster['cluster']}: {cluster['size']} records, "
              f"dominant element {cluster['dominant_element']}")


def protect_the_vulnerable():
    train = [P.vector_add(8), P.dot_product(8), P.fibonacci(10)]
    target = P.checksum(12)
    predictor = SDCPredictor(n_trials_per_instruction=20, n_epochs=150, seed=0)
    predictor.fit(train)
    prone = predictor.sdc_prone_instructions(target, threshold=0.25)
    truth = label_instructions(target, n_trials_per_instruction=20, seed=9)
    acc = float(np.mean(predictor.predict(target) == truth))
    print(f"\n[24] GAT on unseen {target.name}: outcome accuracy {acc:.2f}, "
          f"SDC-prone instructions {prone}")

    study = ReplicationStudy(
        [P.dot_product(8), P.checksum(12), P.vector_add(8)],
        n_trials_per_instruction=25,
        seed=0,
    )
    program = study.programs[1]
    heuristic = study.evaluate_heuristic(program)
    ipas = study.evaluate_ipas(program)
    print(f"[27] IPAS on {program.name}: "
          f"coverage {ipas.coverage:.2f} at slowdown {ipas.slowdown:.2f} "
          f"vs heuristic {heuristic.coverage:.2f}/{heuristic.slowdown:.2f} "
          f"({ipas.slowdown_reduction_vs(heuristic):.0%} less slowdown)")


def main():
    campaign = ground_truth_campaign()
    accelerate_with_ml()
    mine_the_logs(campaign)
    protect_the_vulnerable()


if __name__ == "__main__":
    main()
