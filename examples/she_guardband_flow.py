"""Scenario: signing off a processor core with SHE-aware ML guardbands.

Reproduces the Sec. II / Fig. 3 flow end to end on a synthesized core:

1. characterize the 59-cell library at the chip temperature;
2. run the SHE flow — SHE-characterized library + conventional STA —
   to get every instance's self-heating temperature (the Fig. 2 map);
3. train the ML characterizer once on SPICE-like samples;
4. generate a per-instance corner library in one shot and sign off;
5. compare against the conventional global worst-case corner.

Usage:
    python examples/she_guardband_flow.py
"""

from repro.circuit import (
    MLCharacterizer,
    SheFlow,
    SpiceLikeCharacterizer,
    StaticTimingAnalysis,
    build_default_library,
    guardband_comparison,
    synthesize_core,
    write_sdf,
)


def main():
    chip_t = 45.0
    library = build_default_library(temperature_c=chip_t)
    characterizer = SpiceLikeCharacterizer()
    characterizer.characterize_library(library)
    netlist = synthesize_core(library, n_instances=400, seed=7)
    print(f"design: {netlist.name} — {len(netlist)} instances over "
          f"{len(library)} distinct cells")

    # Step 1-2: the Fig. 3 upper flow.
    she_report = SheFlow(characterizer).run(netlist, library)
    lo, mean, hi = she_report.spread()
    print(f"SHE map (Fig. 2): dT min {lo:.1f} K, mean {mean:.1f} K, max {hi:.1f} K")
    by_type = she_report.per_cell_type()
    widest = max(
        ((name, max(ts) - min(ts)) for name, ts in by_type.items() if len(ts) > 3),
        key=lambda kv: kv[1],
    )
    print(f"widest per-type spread: {widest[0]} varies by {widest[1]:.1f} K "
          f"across its instances")
    sdf_head = she_report.sdf_text.splitlines()[:6]
    print("SDF with temperatures in the delay slot (head):")
    for line in sdf_head:
        print("   " + line)

    # Step 3-5: ML characterization and the guardband comparison.
    result = guardband_comparison(
        netlist, build_default_library, chip_temperature_c=chip_t,
        ml_training_samples=3000, seed=0,
    )
    print("\nsign-off comparison:")
    print(f"  nominal (no SHE)          : {result.nominal_period:8.1f} ps")
    print(f"  worst-case corner         : {result.worst_case_period:8.1f} ps "
          f"(guardband {result.guardband_worst_case:.1f} ps)")
    print(f"  SHE-aware ML per-instance : {result.she_aware_period:8.1f} ps "
          f"(guardband {result.guardband_she_aware:.1f} ps)")
    print(f"  guardband reduction {result.guardband_reduction:.0%}, "
          f"clock-frequency gain {result.performance_gain:.2%}, "
          f"ML validation MAPE {result.ml_validation_mape:.2%}")


if __name__ == "__main__":
    main()
