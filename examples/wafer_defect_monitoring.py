"""Scenario: in-fab wafer-map defect-pattern monitoring with HDC.

A fab's inline test produces wafer maps; recognizing structured defect
patterns (center blobs, edge rings, scratches, donuts) localizes process
excursions.  Ref [17] does this with hyperdimensional computing — and the
same i.i.d.-by-design robustness that protects HDC inference on
unreliable accelerators (Sec. II) applies on the monitoring hardware.

The script trains the spatial HDC classifier on synthetic wafers, reports
per-pattern accuracy against an MLP baseline, then degrades the compute
substrate (component error injection) to show the graceful-degradation
advantage, and finally runs a language-identification bonus round with
the n-gram encoder (ref [13]).

Usage:
    python examples/wafer_defect_monitoring.py
"""

import numpy as np

from repro.hdc import (
    PATTERN_CLASSES,
    WaferHDCClassifier,
    WaferMapGenerator,
    language_identification_study,
)
from repro.ml import MLPClassifier, train_test_split


def wafer_monitoring():
    gen = WaferMapGenerator(side=20, seed=0)
    maps, labels = gen.dataset(n_per_class=40)
    idx = np.arange(len(maps))
    tr, te, ytr, yte = train_test_split(idx, labels, test_size=0.3, seed=0)

    hdc = WaferHDCClassifier(side=20, dim=4096, seed=0).fit(maps[tr], ytr)
    X = maps.reshape(len(maps), -1).astype(float)
    mlp = MLPClassifier(hidden=(64,), n_epochs=150, lr=3e-3, seed=0).fit(X[tr], ytr)

    pred_hdc = hdc.predict(maps[te])
    pred_mlp = mlp.predict(X[te])
    print("per-pattern accuracy (HDC / MLP):")
    for label, pattern in enumerate(PATTERN_CLASSES):
        mask = yte == label
        acc_h = float(np.mean(pred_hdc[mask] == label))
        acc_m = float(np.mean(pred_mlp[mask] == label))
        print(f"  {pattern:<10} {acc_h:.2f} / {acc_m:.2f}")
    print(f"overall: HDC {np.mean(pred_hdc == yte):.3f}, "
          f"MLP {np.mean(pred_mlp == yte):.3f}")

    print("\nHDC under compute-substrate errors:")
    for er in (0.0, 0.2, 0.4):
        noisy = hdc.predict(maps[te], error_rate=er, rng=np.random.default_rng(1))
        print(f"  error rate {er:.1f}: accuracy {np.mean(noisy == yte):.3f}")


def language_bonus():
    clf, texts, labels, accuracy = language_identification_study(
        n_languages=5, n_train=15, n_test=10, text_length=150, dim=2048, seed=0
    )
    noisy = clf.predict(texts, error_rate=0.4, rng=np.random.default_rng(1))
    print(f"\nlanguage identification (ref [13] style): "
          f"clean {accuracy:.3f}, at 40% errors {np.mean(noisy == labels):.3f}")


def main():
    wafer_monitoring()
    language_bonus()


if __name__ == "__main__":
    main()
