"""Scenario: an avionics mixed-criticality computer under workload spikes.

Flight-control (HI-criticality) processing must never miss its budget;
cabin/telemetry (LO-criticality) tasks fill the remaining capacity.  HI
demand occasionally spikes (turbulence, sensor bursts) with observable
precursors.  The script compares the classic pessimistic and optimistic
admission policies against the learned controller of ref [38], then
sweeps the learner's safety quantile (the QoS-vs-mode-switch dial).

Usage:
    python examples/mixed_criticality_avionics.py
"""

from repro.system.mixed_criticality import (
    LearnedController,
    MCWorkload,
    OptimisticController,
    PessimisticController,
    generate_lo_tasks,
    run_mc_simulation,
)


def main():
    lo_tasks = generate_lo_tasks(6, seed=0)
    print("LO task set (value = QoS contribution when it runs):")
    for task in lo_tasks:
        print(f"  {task.name}: demand {task.demand:.2f}, value {task.value:.2f}")

    learned = LearnedController(quantile=0.95, seed=0).train(
        lambda: MCWorkload(seed=42), n_epochs=1500
    )
    print("\ncontrollers over an 800-epoch mission (HI spikes ~8% of epochs):")
    for controller in (
        PessimisticController(MCWorkload()),
        OptimisticController(MCWorkload()),
        learned,
    ):
        metrics = run_mc_simulation(
            controller, MCWorkload(seed=7), lo_tasks, n_epochs=800
        )
        print(
            f"  {controller.name:<12} LO QoS {metrics.qos:.3f}  "
            f"HI miss rate {metrics.hi_miss_rate:.4f}  "
            f"mode switches {metrics.mode_switches}"
        )

    print("\nsafety-quantile sweep for the learned controller:")
    for quantile in (0.6, 0.8, 0.95, 0.99):
        ctrl = LearnedController(quantile=quantile, seed=0).train(
            lambda: MCWorkload(seed=42), n_epochs=1200
        )
        metrics = run_mc_simulation(ctrl, MCWorkload(seed=7), lo_tasks, n_epochs=600)
        print(
            f"  q={quantile:.2f}: QoS {metrics.qos:.3f}, "
            f"switches {metrics.mode_switches}, "
            f"HI miss rate {metrics.hi_miss_rate:.4f}"
        )


if __name__ == "__main__":
    main()
