"""Scenario: 10-year aging sign-off of a core, workload-aware vs worst-case.

Reproduces the refs [11]/[12] flow end to end: propagate the workload's
signal probabilities through the netlist, turn per-instance stress into
per-instance end-of-life threshold shifts with the device aging models,
generate an aged per-instance corner library with the ML characterizer,
and compare the resulting clock against the conventional blanket
worst-case-stress corner.  Then close the loop at run time with the
Sec. VI-A cross-layer adaptive clocking mission.

Usage:
    python examples/aging_signoff.py
"""

import numpy as np

from repro.circuit import (
    AgingFlow,
    SpiceLikeCharacterizer,
    build_default_library,
    instance_stress,
    synthesize_core,
)
from repro.core.cross_layer import AgingAwareSystem, compare_strategies


def design_time_signoff():
    library = build_default_library()
    characterizer = SpiceLikeCharacterizer()
    characterizer.characterize_library(library)
    netlist = synthesize_core(library, n_instances=250, seed=1)

    stress = instance_stress(netlist)
    duties = np.asarray([s["duty_cycle"] for s in stress.values()])
    print(f"design: {len(netlist)} instances; NBTI duty cycles span "
          f"{duties.min():.2f}..{duties.max():.2f} (worst-case assumes 1.0)")

    flow = AgingFlow(characterizer, lifetime_s=3.15e8, temperature_c=85.0)
    result = flow.signoff(netlist, build_default_library, ml_training_samples=3000)
    print("\n10-year sign-off:")
    print(f"  fresh silicon          : {result.fresh_period:8.1f} ps")
    print(f"  worst-case stress      : {result.worst_case_period:8.1f} ps "
          f"(guardband {result.guardband_worst_case:.1f} ps)")
    print(f"  workload-aware ML      : {result.workload_aware_period:8.1f} ps "
          f"(guardband {result.guardband_workload_aware:.1f} ps)")
    print(f"  guardband reduction {result.guardband_reduction:.0%}; "
          f"mean dVth {result.mean_delta_vth*1000:.1f} mV vs worst-case "
          f"{flow.worst_case_delta_vth(build_default_library())*1000:.1f} mV")


def run_time_adaptation():
    print("\nrun-time cross-layer mission (Sec. VI-A), 10 years:")
    system = AgingAwareSystem(
        nominal_delay_ps=500.0, vdd=0.8, vth0=0.30, temperature_c=85.0
    )
    for strategy, log in compare_strategies(system, mission_years=10.0).items():
        print(f"  {strategy:<18} mean f {log.mean_frequency:.3f} GHz, "
              f"violations {log.violations:3d}, work {log.work:.3e} cycles")


def main():
    design_time_signoff()
    run_time_adaptation()


if __name__ == "__main__":
    main()
